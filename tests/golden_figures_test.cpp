// Locks in the headline paper-reproduction numbers from DESIGN.md §4 so a
// refactor cannot silently shift them. Everything here is deterministic
// (fixed seeds, cycle-level simulation, analytic models), so the tolerances
// exist only to absorb deliberate, reviewed model tweaks — not noise. If a
// change moves a number outside its band, either the change is wrong or
// DESIGN.md/EXPERIMENTS.md must be re-derived alongside this test.
//
// Golden values (iters = 2, 64 Na/cell, seed 0x5eed):
//   - locking-filter acceptance at c = R_c: ~15.5 % (Eq. 3, Fig. 3)
//   - strong scaling 4x4x4-A = 2.56 µs/day, 4x4x4-C = 9.20 µs/day,
//     C vs A = 3.60x (paper: 5.26x)
//   - FASDA best (C) vs best GPU (1x A100 model) = 4.66x (paper: 4.67x)

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "../bench/bench_common.hpp"
#include "fasda/md/energy.hpp"
#include "fasda/model/perf_models.hpp"

namespace fasda {
namespace {

double strong_rate(int pes_per_spe, int spes,
                   sim::TickMode mode = sim::TickMode::kElide) {
  auto config = bench::strong_config(pes_per_spe, spes);
  config.tick_mode = mode;
  const auto state = bench::standard_dataset({4, 4, 4});
  core::Simulation sim(state, md::ForceField::sodium(), config);
  sim.run(2);
  return sim.microseconds_per_day();
}

TEST(GoldenFigures, LockingFilterAcceptanceNearFifteenPointFive) {
  // Analytic Eq. 3 at c = 1: cutoff-sphere volume over the 27-cell
  // neighbourhood volume.
  const double p_analytic = (4.0 / 3.0) * std::numbers::pi / 27.0;
  EXPECT_NEAR(p_analytic, 0.155, 0.001);

  // Empirical acceptance on the ablation_cellsize c = 1 dataset: uniform
  // placement, 16 particles per cell, cells of edge R_c.
  const double rc = 8.5;
  md::DatasetParams params;
  params.placement = md::Placement::kUniform;
  params.particles_per_cell = 16;
  params.min_distance = 0.8;
  params.seed = 99;
  const auto state =
      md::generate_dataset({3, 3, 3}, rc, md::ForceField::sodium(), params);
  const std::size_t pairs = md::count_pairs_within_cutoff(state, rc);
  const double density =
      static_cast<double>(state.size()) / std::pow(3 * rc, 3);
  const double candidates_per_particle = 27.0 * density * std::pow(rc, 3);
  const double p_measured =
      2.0 * static_cast<double>(pairs) /
      (static_cast<double>(state.size()) * candidates_per_particle);
  EXPECT_NEAR(p_measured, p_analytic, 0.02)
      << "measured locking-filter acceptance drifted from Eq. 3";
}

TEST(GoldenFigures, StrongScalingRatesAndCvsAGain) {
  const double rate_a = strong_rate(1, 1);  // 4x4x4-A: 1 SPE, 1 PE
  const double rate_c = strong_rate(3, 2);  // 4x4x4-C: 2 SPE, 3 PE
  EXPECT_NEAR(rate_a, 2.56, 0.13);  // ±5%
  EXPECT_NEAR(rate_c, 9.20, 0.46);  // ±5%

  const double gain = rate_c / rate_a;
  EXPECT_GE(gain, 3.4) << "C vs A strong-scaling gain collapsed";
  EXPECT_LE(gain, 3.8) << "C vs A strong-scaling gain inflated";
}

TEST(GoldenFigures, Fig18PacketCountsUnchangedByArmedReliability) {
  // Arming the ack/retransmit protocol with an all-zero FaultPlan must not
  // shift the Fig. 18 data traffic: the same data packets leave on the same
  // cycles (acks ride out-of-band and are counted separately), so the
  // published packet counts stay comparable whether or not a run is armed.
  const auto state = bench::standard_dataset({4, 4, 4}, 16);
  auto config = bench::strong_config(3, 2);  // design C, 2x2x2 torus

  core::Simulation plain(state, md::ForceField::sodium(), config);
  plain.run(2);

  config.faults = net::FaultPlan{};  // protocol on, wire perfect
  core::Simulation armed(state, md::ForceField::sodium(), config);
  armed.run(2);

  const auto p = plain.traffic();
  const auto a = armed.traffic();
  EXPECT_EQ(a.positions.packets, p.positions.packets);
  EXPECT_EQ(a.forces.packets, p.forces.packets);
  EXPECT_EQ(a.migrations.packets, p.migrations.packets);
  EXPECT_EQ(a.positions.total_packets, p.positions.total_packets);
  EXPECT_EQ(a.forces.total_packets, p.forces.total_packets);
  EXPECT_EQ(a.migrations.total_packets, p.migrations.total_packets);
  // A perfect wire never retransmits; control traffic exists but is
  // accounted outside the data matrix.
  EXPECT_EQ(a.positions.retransmit_packets, 0u);
  EXPECT_EQ(a.forces.retransmit_packets, 0u);
  EXPECT_GT(a.positions.control_packets, 0u);
  EXPECT_EQ(p.positions.control_packets, 0u);
  // Total cycles are NOT asserted equal: an armed run drains its trailing
  // acks (one extra round trip per iteration) before the cluster reads as
  // done. Data-packet departures — what Fig. 18 reports — are unchanged.
}

TEST(GoldenFigures, WatchdogNeverFiresOnTheLargestGoldenGeometry) {
  // False-positive regression for the DESIGN.md §11 watchdog: the densest
  // golden-figure variant (design C: 4x4x4 cells on a 2x2x2 torus, 2 SPE x
  // 3 PE, 16 particles per cell) armed with a perfect wire must run to
  // completion under the default cycle budget. A healthy node heartbeats
  // every cycle — its control tick is never straggler-gated — so even this
  // longest-phase geometry cannot trip sync::NodeFailureError.
  const auto state = bench::standard_dataset({4, 4, 4}, 16);
  auto config = bench::strong_config(3, 2);
  ASSERT_GT(config.watchdog_budget, 0u) << "watchdog must be on by default";
  config.faults = net::FaultPlan{};  // armed protocol, perfect wire

  core::Simulation sim(state, md::ForceField::sodium(), config);
  EXPECT_NO_THROW(sim.run(2));

  // A deliberately slowed straggler node still must not trip it: the
  // watchdog watches the control heartbeat, not datapath progress.
  auto straggler = bench::strong_config(3, 2);
  straggler.faults = net::FaultPlan{};
  straggler.stragglers = {{3, 8}};
  core::Simulation slow(state, md::ForceField::sodium(), straggler);
  EXPECT_NO_THROW(slow.run(2));
}

TEST(GoldenFigures, FiguresIdenticalWithElisionForcedOnAndOff) {
  // The golden bands above run under the default tick mode (elision on).
  // This guard pins the other leg: forcing the naive every-cycle loop and
  // the elided loop must produce EXACTLY the same published numbers — the
  // simulated rates are cycle-count arithmetic, so they are equal as
  // doubles, not merely within tolerance. If these ever split, elision is
  // changing figures and every band above is suspect.
  EXPECT_EQ(strong_rate(1, 1, sim::TickMode::kNaive),
            strong_rate(1, 1, sim::TickMode::kElide))
      << "4x4x4-A rate depends on the tick mode";
  EXPECT_EQ(strong_rate(3, 2, sim::TickMode::kNaive),
            strong_rate(3, 2, sim::TickMode::kElide))
      << "4x4x4-C rate depends on the tick mode";

  // Fig. 18 traffic, cycle totals and pair counts under both modes.
  const auto state = bench::standard_dataset({4, 4, 4}, 16);
  auto config = bench::strong_config(3, 2);
  config.tick_mode = sim::TickMode::kNaive;
  core::Simulation naive(state, md::ForceField::sodium(), config);
  naive.run(2);
  config.tick_mode = sim::TickMode::kElide;
  core::Simulation elided(state, md::ForceField::sodium(), config);
  elided.run(2);

  EXPECT_EQ(elided.total_cycles(), naive.total_cycles());
  EXPECT_EQ(elided.pairs_issued(), naive.pairs_issued());
  EXPECT_EQ(elided.microseconds_per_day(), naive.microseconds_per_day());
  const auto n = naive.traffic();
  const auto e = elided.traffic();
  EXPECT_EQ(e.positions.packets, n.positions.packets);
  EXPECT_EQ(e.forces.packets, n.forces.packets);
  EXPECT_EQ(e.migrations.packets, n.migrations.packets);
  EXPECT_EQ(e.positions.total_packets, n.positions.total_packets);
  EXPECT_EQ(e.forces.total_packets, n.forces.total_packets);
  EXPECT_EQ(e.migrations.total_packets, n.migrations.total_packets);
}

TEST(GoldenFigures, FasdaBestVsBestGpuNearPaperRatio) {
  const double rate_c = strong_rate(3, 2);
  const model::GpuModel gpu;
  const std::size_t n444 = 64 * 64;  // 4x4x4 cells x 64 Na
  const double gpu_best = gpu.us_per_day(n444, 1, model::GpuKind::kA100);
  EXPECT_NEAR(gpu_best, 1.98, 0.10);

  const double ratio = rate_c / gpu_best;
  EXPECT_GE(ratio, 4.4) << "FASDA-vs-GPU advantage collapsed (paper: 4.67x)";
  EXPECT_LE(ratio, 4.9) << "FASDA-vs-GPU advantage inflated (paper: 4.67x)";
}

}  // namespace
}  // namespace fasda
