#include <gtest/gtest.h>

#include <cmath>

#include "fasda/core/simulation.hpp"
#include "fasda/engine/registry.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/md/energy.hpp"
#include "fasda/md/functional_engine.hpp"

namespace fasda::core {
namespace {

md::SystemState make_state(geom::IVec3 dims, int per_cell = 16,
                           std::uint64_t seed = 7) {
  md::DatasetParams p;
  p.particles_per_cell = per_cell;
  p.seed = seed;
  p.temperature = 150.0;
  return md::generate_dataset(dims, 8.5, md::ForceField::sodium(), p);
}

ClusterConfig single_node() {
  ClusterConfig c;
  c.node_dims = {1, 1, 1};
  c.cells_per_node = {3, 3, 3};
  return c;
}

ClusterConfig eight_nodes() {
  ClusterConfig c;
  c.node_dims = {2, 2, 2};
  c.cells_per_node = {2, 2, 2};
  c.channel.link_latency = 50;  // faster tests; same mechanics
  return c;
}

double worst_force_error(const std::vector<geom::Vec3d>& got,
                         const std::vector<geom::Vec3d>& want) {
  double worst = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    worst = std::max(worst, (got[i] - want[i]).norm());
    scale = std::max(scale, want[i].norm());
  }
  return scale > 0 ? worst / scale : worst;
}

// The cross-validation tests drive both machines through the fasda::engine
// layer — the same interface every production driver uses — so any adapter
// drift from the underlying numerics would surface here.
std::unique_ptr<engine::Engine> make_engine(const md::SystemState& state,
                                            const std::string& name,
                                            bool eight_node_cluster = false) {
  engine::EngineSpec spec;
  spec.engine = name;
  if (eight_node_cluster) {
    spec.cells_per_node = geom::IVec3{2, 2, 2};
    spec.channel.link_latency = 50;  // faster tests; same mechanics
  }
  return engine::Registry::instance().create(state, md::ForceField::sodium(),
                                             spec);
}

double worst_position_gap(const md::SystemState& reference_grid,
                          const md::SystemState& got,
                          const md::SystemState& want) {
  const auto grid = reference_grid.grid();
  double worst = 0.0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    worst = std::max(worst,
                     grid.min_image(got.positions[i], want.positions[i]).norm());
  }
  return worst;
}

TEST(Simulation, RejectsMismatchedGeometry) {
  const auto state = make_state({3, 3, 3});
  ClusterConfig c = single_node();
  c.cells_per_node = {4, 4, 4};
  EXPECT_THROW(Simulation(state, md::ForceField::sodium(), c),
               std::invalid_argument);
}

TEST(Simulation, SingleNodeForcesMatchFunctionalEngine) {
  // The flagship equivalence check: the cycle-level machine (rings, filters,
  // pipelines, retirement) must produce the same forces as the functional
  // model of the same numerics, pair for pair. After step(1) both engines
  // report the forces evaluated on the identical initial configuration.
  const auto state = make_state({3, 3, 3});
  auto cycle = make_engine(state, "cycle");
  auto golden = make_engine(state, "functional");
  cycle->step(1);
  golden->step(1);

  const double err = worst_force_error(cycle->forces_by_particle(),
                                       golden->forces_by_particle());
  EXPECT_LT(err, 1e-5) << "same pairs, same tables; only float summation "
                          "order differs";
}

TEST(Simulation, SingleNodePositionsTrackFunctionalEngine) {
  const auto state = make_state({3, 3, 3});
  auto cycle = make_engine(state, "cycle");
  auto golden = make_engine(state, "functional");
  cycle->step(5);
  golden->step(5);
  EXPECT_LT(worst_position_gap(state, cycle->state(), golden->state()),
            1e-4);  // Å after 5 steps
}

TEST(Simulation, MultiNodeForcesMatchFunctionalEngine) {
  // Same check across 8 FPGAs: exercises GCID→LCID conversion, P2R/F2R
  // packets, EX injection, and chained sync end to end.
  const auto state = make_state({4, 4, 4});
  auto cycle = make_engine(state, "cycle", /*eight_node_cluster=*/true);
  auto golden = make_engine(state, "functional");
  cycle->step(1);
  golden->step(1);

  const double err = worst_force_error(cycle->forces_by_particle(),
                                       golden->forces_by_particle());
  EXPECT_LT(err, 1e-5);
}

TEST(Simulation, MultiNodeTrajectoryMatchesSingleNode) {
  // Distribution must not change the physics: 8 nodes vs 1 node on the same
  // 4x4x4 space (one node owning all 64 cells is impossible here since
  // cells_per_node must tile node_dims, so compare against the functional
  // engine after several steps).
  const auto state = make_state({4, 4, 4}, 12);
  auto cycle = make_engine(state, "cycle", /*eight_node_cluster=*/true);
  auto golden = make_engine(state, "functional");
  cycle->step(5);
  golden->step(5);
  EXPECT_LT(worst_position_gap(state, cycle->state(), golden->state()), 1e-4);
}

TEST(Simulation, PairCountMatchesReference) {
  const auto state = make_state({3, 3, 3});
  Simulation sim(state, md::ForceField::sodium(), single_node());
  sim.run(1);
  EXPECT_EQ(sim.pairs_issued(), md::count_pairs_within_cutoff(state, 8.5));
}

TEST(Simulation, MomentumConserved) {
  const auto state = make_state({3, 3, 3});
  const auto ff = md::ForceField::sodium();
  Simulation sim(state, ff, single_node());
  sim.run(10);
  const auto p = md::total_momentum(sim.state(), ff);
  EXPECT_LT(p.norm() / static_cast<double>(state.size()), 1e-5);
}

TEST(Simulation, EnergyStableOverRun) {
  const auto state = make_state({3, 3, 3}, 32, 9);
  const auto ff = md::ForceField::sodium();
  Simulation sim(state, ff, single_node());
  const double e0 = sim.total_energy();
  const double scale = std::abs(e0) + md::kinetic_energy(state, ff);
  sim.run(50);
  const double e1 = sim.total_energy();
  EXPECT_LT(std::abs(e1 - e0) / scale, 5e-3);
}

TEST(Simulation, ReportsCyclesAndRate) {
  const auto state = make_state({3, 3, 3});
  Simulation sim(state, md::ForceField::sodium(), single_node());
  sim.run(2);
  EXPECT_GT(sim.last_run_cycles(), 0u);
  const double rate = sim.microseconds_per_day();
  EXPECT_GT(rate, 0.0);
  // Sanity: a 3x3x3 space with 16 particles/cell at 200 MHz lands within a
  // couple orders of magnitude of the paper's ~2 µs/day (64/cell).
  EXPECT_LT(rate, 1000.0);
}

TEST(Simulation, UtilizationReportPopulated) {
  const auto state = make_state({3, 3, 3});
  Simulation sim(state, md::ForceField::sodium(), single_node());
  sim.run(2);
  const auto u = sim.utilization();
  EXPECT_GT(u.pe_time, 0.0);
  EXPECT_GT(u.filter_hardware, 0.0);
  EXPECT_GT(u.pr_time, 0.0);
  EXPECT_GT(u.fr_time, 0.0);
  EXPECT_GE(u.mu_time, 0.0);
  EXPECT_LT(u.mu_time, 0.2) << "MU must be a small fraction (paper: <5%)";
  EXPECT_LE(u.pe_hardware, 1.0);
}

TEST(Simulation, MultiNodeTrafficRecorded) {
  const auto state = make_state({4, 4, 4});
  Simulation sim(state, md::ForceField::sodium(), eight_nodes());
  sim.run(2);
  const auto t = sim.traffic();
  EXPECT_GT(t.positions.total_packets, 0u);
  EXPECT_GT(t.forces.total_packets, 0u);
  EXPECT_GT(t.position_gbps_per_node, 0.0);
  // Paper §5.4: well below the 100 Gbps port bandwidth.
  EXPECT_LT(t.position_gbps_per_node, 100.0);
}

TEST(Simulation, SingleNodeHasNoNetworkTraffic) {
  const auto state = make_state({3, 3, 3});
  Simulation sim(state, md::ForceField::sodium(), single_node());
  sim.run(2);
  EXPECT_EQ(sim.traffic().positions.total_packets, 0u);
  EXPECT_EQ(sim.traffic().forces.total_packets, 0u);
}

}  // namespace
}  // namespace fasda::core
