// The safety case for the process shard transport (DESIGN.md §14): running
// the cluster as forked worker processes over socketpairs must be BITWISE
// identical to the in-process transport — same particle trajectories, same
// forces, same cycle counts, same traffic matrices, same metrics snapshots
// — across {1 thread, 4 threads, 2 procs, 4 procs}, on clean runs, under
// ~10% mixed link faults, and in both the elided and naive tick modes.
// Plus the worker lifecycle: a killed worker surfaces as the typed
// sync::NodeFailureError (never a hang — every test here carries a ctest
// TIMEOUT), workers die with the parent (no orphans), and destruction
// leaves no zombies.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <string>
#include <vector>

#include "fasda/core/simulation.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/obs/obs.hpp"
#include "fasda/sim/kernel.hpp"
#include "fasda/supervisor/supervisor.hpp"

namespace fasda {
namespace {

md::SystemState make_state(geom::IVec3 dims, int per_cell = 8,
                           std::uint64_t seed = 21) {
  md::DatasetParams p;
  p.particles_per_cell = per_cell;
  p.seed = seed;
  p.temperature = 200.0;
  return md::generate_dataset(dims, 8.5, md::ForceField::sodium(), p);
}

struct RunResult {
  md::SystemState state;
  std::vector<geom::Vec3f> forces;
  sim::Cycle cycles = 0;
  std::uint64_t pairs = 0;
  net::TrafficMatrix positions, forces_traffic, migrations;
  sim::ElisionStats elision;
  std::string metrics_json;
};

/// 2x2x2 FPGA nodes x 2x2x2 cells: multi-node traffic on every class and
/// enough nodes to split 4 ways.
core::ClusterConfig multi_node_config() {
  core::ClusterConfig c;
  c.node_dims = {2, 2, 2};
  c.cells_per_node = {2, 2, 2};
  c.channel.link_latency = 50;
  return c;
}

/// threads > 0 selects the in-process transport at that worker-thread
/// count; procs > 0 selects the process transport at that worker count.
RunResult run_cluster(core::ClusterConfig config, int threads, int procs,
                      sim::TickMode mode, int iters = 2) {
  config.num_worker_threads = threads;
  config.proc_workers = procs;
  config.tick_mode = mode;
  obs::Hub hub;
  config.obs = &hub;
  const geom::IVec3 dims = {config.node_dims.x * config.cells_per_node.x,
                            config.node_dims.y * config.cells_per_node.y,
                            config.node_dims.z * config.cells_per_node.z};
  const auto state = make_state(dims);
  core::Simulation sim(state, md::ForceField::sodium(), config);
  sim.run(iters);
  RunResult r;
  r.state = sim.state();
  r.forces = sim.forces_by_particle();
  r.cycles = sim.total_cycles();
  r.pairs = sim.pairs_issued();
  const auto traffic = sim.traffic();
  r.positions = traffic.positions;
  r.forces_traffic = traffic.forces;
  r.migrations = traffic.migrations;
  r.elision = sim.elision_stats();
  r.metrics_json = hub.metrics().snapshot().to_json();
  return r;
}

template <class T>
bool bitwise_equal(const T& a, const T& b) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::memcmp(&a, &b, sizeof(T)) == 0;
}

void expect_identical(const RunResult& got, const RunResult& want,
                      const std::string& label) {
  EXPECT_EQ(got.cycles, want.cycles) << label;
  EXPECT_EQ(got.pairs, want.pairs) << label;

  ASSERT_EQ(got.state.positions.size(), want.state.positions.size()) << label;
  std::size_t bad = 0;
  for (std::size_t i = 0; i < want.state.positions.size(); ++i) {
    if (!bitwise_equal(got.state.positions[i], want.state.positions[i])) ++bad;
    if (!bitwise_equal(got.state.velocities[i], want.state.velocities[i]))
      ++bad;
    if (got.state.elements[i] != want.state.elements[i]) ++bad;
  }
  EXPECT_EQ(bad, 0u) << label << ": particle state diverged";

  ASSERT_EQ(got.forces.size(), want.forces.size()) << label;
  bad = 0;
  for (std::size_t i = 0; i < want.forces.size(); ++i) {
    if (!bitwise_equal(got.forces[i], want.forces[i])) ++bad;
  }
  EXPECT_EQ(bad, 0u) << label << ": forces diverged";

  EXPECT_EQ(got.positions.total_packets, want.positions.total_packets) << label;
  EXPECT_EQ(got.positions.packets, want.positions.packets) << label;
  EXPECT_EQ(got.forces_traffic.total_packets, want.forces_traffic.total_packets)
      << label;
  EXPECT_EQ(got.forces_traffic.packets, want.forces_traffic.packets) << label;
  EXPECT_EQ(got.migrations.total_packets, want.migrations.total_packets)
      << label;
  EXPECT_EQ(got.migrations.packets, want.migrations.packets) << label;

  // Elision counters are part of the contract: the process transport folds
  // per-worker skip counters back into the exact in-process totals.
  EXPECT_EQ(got.elision.executed_cycles, want.elision.executed_cycles) << label;
  EXPECT_EQ(got.elision.elided_cycles, want.elision.elided_cycles) << label;
  EXPECT_EQ(got.elision.component_idle_skips,
            want.elision.component_idle_skips)
      << label;
  EXPECT_EQ(got.elision.idle_wakes, want.elision.idle_wakes) << label;
  EXPECT_EQ(got.elision.mispredicts, want.elision.mispredicts) << label;

  // The telemetry pillar: everything the hub published is derived from
  // simulated state, so the merged snapshots must render identically —
  // including the per-node counters folded over the process boundary.
  EXPECT_EQ(got.metrics_json, want.metrics_json)
      << label << ": metrics snapshot diverged";
}

/// ~10% mixed wire faults on every traffic class; the ack/retransmit
/// protocol (armed by the mere presence of the plan) recovers them all.
net::FaultPlan mixed_link_faults() {
  net::FaultPlan plan;
  plan.seed = 0xFA57;
  plan.all = {.drop = 0.1, .dup = 0.05, .reorder = 0.05, .corrupt = 0.05};
  return plan;
}

// --------------------------------------------------------- clean runs

TEST(ProcSharding, CleanRunBitwiseIdenticalAcrossTransports) {
  const auto config = multi_node_config();
  const RunResult want = run_cluster(config, 1, 0, sim::TickMode::kElide);
  ASSERT_GT(want.positions.total_packets, 0u) << "multi-node traffic expected";
  ASSERT_GT(want.elision.component_idle_skips, 0u)
      << "differential is vacuous if the oracle never slept a component";
  expect_identical(run_cluster(config, 4, 0, sim::TickMode::kElide), want,
                   "threads=4");
  for (const int procs : {2, 4}) {
    expect_identical(run_cluster(config, 1, procs, sim::TickMode::kElide),
                     want, "procs=" + std::to_string(procs));
  }
}

TEST(ProcSharding, NaiveTickBitwiseIdenticalAcrossTransports) {
  const auto config = multi_node_config();
  const RunResult want = run_cluster(config, 1, 0, sim::TickMode::kNaive);
  EXPECT_EQ(want.elision.elided_cycles, 0u) << "naive loop must never skip";
  for (const int procs : {2, 4}) {
    const RunResult got =
        run_cluster(config, 1, procs, sim::TickMode::kNaive);
    EXPECT_EQ(got.elision.elided_cycles, 0u);
    expect_identical(got, want, "naive procs=" + std::to_string(procs));
  }
  // The elide-vs-naive differential itself (same transport) lives in
  // tick_elision_test; here the contract is per-mode transport identity.
}

// High link latency is where whole-cluster windows get elided; the
// parent's kJump fast path must be bitwise transparent.
TEST(ProcSharding, ElidedWindowsUnderHighLinkLatency) {
  auto config = multi_node_config();
  config.channel.link_latency = 800;
  const RunResult want = run_cluster(config, 1, 0, sim::TickMode::kElide, 1);
  EXPECT_GT(want.elision.elided_cycles, 0u)
      << "long links should produce whole elided windows";
  expect_identical(run_cluster(config, 1, 2, sim::TickMode::kElide, 1), want,
                   "link_latency=800 procs=2");
}

TEST(ProcSharding, BulkSyncSplitBarrierBitwiseSafe) {
  auto config = multi_node_config();
  config.sync_mode = sync::SyncMode::kBulk;
  config.bulk_barrier_latency = 500;
  const RunResult want = run_cluster(config, 1, 0, sim::TickMode::kElide);
  for (const int procs : {2, 4}) {
    expect_identical(run_cluster(config, 1, procs, sim::TickMode::kElide),
                     want, "bulk procs=" + std::to_string(procs));
  }
}

// ----------------------------------------------------- faulty-wire runs

TEST(ProcSharding, LinkFaultsBitwiseIdenticalAcrossTransports) {
  auto config = multi_node_config();
  config.faults = mixed_link_faults();
  const RunResult want = run_cluster(config, 1, 0, sim::TickMode::kElide);
  expect_identical(run_cluster(config, 4, 0, sim::TickMode::kElide), want,
                   "faults threads=4");
  for (const int procs : {2, 4}) {
    expect_identical(run_cluster(config, 1, procs, sim::TickMode::kElide),
                     want, "faults procs=" + std::to_string(procs));
  }
}

// A node crash inside a worker process must surface as the same typed
// NodeFailureError, at the same detection cycle, with the same message.
TEST(ProcSharding, InjectedNodeCrashMatchesInProcessDetection) {
  auto config = multi_node_config();
  config.faults = net::FaultPlan::parse("crash=1-800");
  config.reliability.max_retries = 3;

  auto failure_of = [&](int procs) {
    auto c = config;
    c.num_worker_threads = 1;
    c.proc_workers = procs;
    const geom::IVec3 dims = {4, 4, 4};
    core::Simulation sim(make_state(dims), md::ForceField::sodium(), c);
    try {
      sim.run(2);
    } catch (const sync::NodeFailureError& e) {
      return std::string(e.what());
    }
    return std::string("no failure");
  };

  const std::string want = failure_of(0);
  ASSERT_NE(want, "no failure");
  EXPECT_EQ(failure_of(2), want);
  EXPECT_EQ(failure_of(4), want);
}

// ------------------------------------------------- config validation

TEST(ProcSharding, RejectsIncompatibleConfigs) {
  const auto state = make_state({4, 4, 4});
  {
    auto c = multi_node_config();
    c.proc_workers = 2;
    c.num_worker_threads = 4;
    EXPECT_THROW(core::Simulation(state, md::ForceField::sodium(), c),
                 std::invalid_argument);
  }
  {
    auto c = multi_node_config();
    c.proc_workers = 2;
    c.tick_mode = sim::TickMode::kValidate;
    EXPECT_THROW(core::Simulation(state, md::ForceField::sodium(), c),
                 std::invalid_argument);
  }
  {
    auto c = multi_node_config();
    c.proc_workers = 2;
    c.sync_mode = sync::SyncMode::kBulk;
    c.bulk_barrier_latency = 0;
    EXPECT_THROW(core::Simulation(state, md::ForceField::sodium(), c),
                 std::invalid_argument);
  }
}

TEST(ProcSharding, WorkerCountClampedToNodes) {
  auto config = multi_node_config();
  config.proc_workers = 64;  // only 8 nodes exist
  const auto state = make_state({4, 4, 4});
  core::Simulation sim(state, md::ForceField::sodium(), config);
  EXPECT_EQ(sim.proc_workers(), 8);
  EXPECT_EQ(sim.proc_worker_pids().size(), 8u);
}

// ------------------------------------------------- worker lifecycle

/// True while `pid` names a live (or zombie) process.
bool process_exists(pid_t pid) {
  return ::kill(pid, 0) == 0 || errno != ESRCH;
}

bool wait_gone(pid_t pid, int millis) {
  for (int i = 0; i < millis / 10; ++i) {
    if (!process_exists(pid)) return true;
    ::usleep(10 * 1000);
  }
  return !process_exists(pid);
}

// SIGKILLing a worker mid-run must surface as the typed NodeFailureError
// naming the dead worker's first owned node — not a hang (this test's
// ctest TIMEOUT is the backstop) and not a raw transport error.
TEST(ProcSharding, KilledWorkerSurfacesAsNodeFailure) {
  auto config = multi_node_config();
  config.proc_workers = 2;
  const auto state = make_state({4, 4, 4});
  core::Simulation sim(state, md::ForceField::sodium(), config);
  const auto pids = sim.proc_worker_pids();
  ASSERT_EQ(pids.size(), 2u);

  // Kill the second worker (owns nodes [4, 8)) before the run: the first
  // round trips over the half-closed socketpair — EPIPE on send or EOF on
  // recv, both converted to the typed failure.
  ASSERT_EQ(::kill(pids[1], SIGKILL), 0);
  ASSERT_TRUE(wait_gone(pids[1], 2000) || ::waitpid(pids[1], nullptr, 0) > 0);
  try {
    sim.run(1);
    FAIL() << "expected sync::NodeFailureError";
  } catch (const sync::NodeFailureError& e) {
    EXPECT_EQ(e.node(), 4);
    EXPECT_NE(std::string(e.what()).find("worker-process"), std::string::npos);
  }
}

// The same, mid-sequence: a successful run, then the worker dies, then the
// next run fails typed. Exercises the send-to-dead-peer (EPIPE) path on a
// warm protocol stream.
TEST(ProcSharding, WorkerDeathBetweenRunsFailsTyped) {
  auto config = multi_node_config();
  config.proc_workers = 2;
  const auto state = make_state({4, 4, 4});
  core::Simulation sim(state, md::ForceField::sodium(), config);
  sim.run(1);
  const auto pids = sim.proc_worker_pids();
  ASSERT_EQ(::kill(pids[0], SIGKILL), 0);
  ::waitpid(pids[0], nullptr, 0);
  EXPECT_THROW(sim.run(1), sync::NodeFailureError);
}

// Destroying the Simulation must shut down and reap every worker: no
// zombies (waitpid in the destructor) and no survivors.
TEST(ProcSharding, DestructionReapsAllWorkers) {
  std::vector<pid_t> pids;
  {
    auto config = multi_node_config();
    config.proc_workers = 4;
    const auto state = make_state({4, 4, 4});
    core::Simulation sim(state, md::ForceField::sodium(), config);
    pids = sim.proc_worker_pids();
    ASSERT_EQ(pids.size(), 4u);
    for (const pid_t pid : pids) EXPECT_TRUE(process_exists(pid));
  }
  for (const pid_t pid : pids) {
    EXPECT_TRUE(wait_gone(pid, 3000)) << "worker " << pid << " survived";
  }
}

// Workers must die with their parent even when the parent exits without
// running destructors (PR_SET_PDEATHSIG): no orphaned workers spinning in
// recv() after a parent crash.
TEST(ProcSharding, WorkersDieWithCrashedParent) {
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const pid_t helper = ::fork();
  ASSERT_GE(helper, 0);
  if (helper == 0) {
    // Stand-in parent: builds the cluster, reports its worker pids, then
    // dies abruptly — no Simulation destructor, no shutdown frames.
    ::close(pipe_fds[0]);
    auto config = multi_node_config();
    config.proc_workers = 2;
    const auto state = make_state({4, 4, 4});
    core::Simulation sim(state, md::ForceField::sodium(), config);
    const auto pids = sim.proc_worker_pids();
    for (const pid_t pid : pids) {
      const auto v = static_cast<std::int64_t>(pid);
      (void)!::write(pipe_fds[1], &v, sizeof v);
    }
    ::close(pipe_fds[1]);
    ::_exit(0);
  }
  ::close(pipe_fds[1]);
  std::vector<pid_t> worker_pids;
  std::int64_t v = 0;
  while (::read(pipe_fds[0], &v, sizeof v) == static_cast<ssize_t>(sizeof v)) {
    worker_pids.push_back(static_cast<pid_t>(v));
  }
  ::close(pipe_fds[0]);
  ASSERT_EQ(::waitpid(helper, nullptr, 0), helper);
  ASSERT_EQ(worker_pids.size(), 2u);
  for (const pid_t pid : worker_pids) {
    EXPECT_TRUE(wait_gone(pid, 5000))
        << "worker " << pid << " orphaned after parent death";
  }
}

// --------------------------------------- supervised crash recovery

engine::EngineSpec crashing_spec(int procs, bool naive) {
  engine::EngineSpec spec;
  spec.engine = "cycle";
  spec.cells_per_node = geom::IVec3{2, 2, 2};
  spec.num_worker_threads = 1;
  spec.proc_workers = procs;
  spec.naive_tick = naive;
  spec.faults = net::FaultPlan::parse("crash=1-2500");
  spec.reliability.max_retries = 3;  // quick dead-board detection
  return spec;
}

TEST(ProcSharding, SupervisedCrashRecoveryMatchesInProcess) {
  constexpr int kSteps = 4;
  md::DatasetParams p;
  p.particles_per_cell = 8;
  p.seed = 17;
  p.temperature = 300.0;
  const auto state =
      md::generate_dataset({4, 4, 4}, 8.5, md::ForceField::sodium(), p);

  auto supervised = [&](int procs, bool naive) {
    supervisor::SupervisorConfig cfg;
    cfg.checkpoint_every = 1;
    supervisor::Supervisor sup(state, md::ForceField::sodium(),
                               crashing_spec(procs, naive), cfg);
    return sup.run(kSteps);
  };

  const auto want = supervised(0, /*naive=*/true);
  ASSERT_TRUE(want.completed) << want.final_error;
  ASSERT_EQ(want.restarts, 1);

  const auto got = supervised(2, /*naive=*/false);
  ASSERT_TRUE(got.completed) << got.final_error;
  EXPECT_EQ(got.restarts, want.restarts);
  EXPECT_EQ(got.steps, want.steps);
  ASSERT_EQ(got.final_state.size(), want.final_state.size());
  std::size_t bad = 0;
  for (std::size_t i = 0; i < want.final_state.size(); ++i) {
    if (!bitwise_equal(got.final_state.positions[i],
                       want.final_state.positions[i]))
      ++bad;
    if (!bitwise_equal(got.final_state.velocities[i],
                       want.final_state.velocities[i]))
      ++bad;
  }
  EXPECT_EQ(bad, 0u) << "recovered trajectory diverged across the transport";
}

}  // namespace
}  // namespace fasda
