#include <gtest/gtest.h>

#include "fasda/net/network.hpp"
#include "fasda/net/wire.hpp"
#include "fasda/util/rng.hpp"

namespace fasda::net {
namespace {

ChannelConfig fast_config() {
  ChannelConfig c;
  c.link_latency = 10;
  c.cooldown = 2;
  return c;
}

struct TwoNodes {
  TwoNodes() : fabric(fast_config()), a(0, fast_config()), b(1, fast_config()) {
    fabric.attach(&a);
    fabric.attach(&b);
  }
  void pump(sim::Cycle& now, int cycles) {
    for (int i = 0; i < cycles; ++i, ++now) {
      a.tick_egress(now, [&](const Packet<PosRecord>& p) { fabric.send(p, now); });
      b.tick_egress(now, [&](const Packet<PosRecord>& p) { fabric.send(p, now); });
      fabric.commit();  // two-phase: staged sends deliver at end of cycle
    }
  }
  Fabric<PosRecord> fabric;
  Endpoint<PosRecord> a, b;
};

PosRecord record(int slot) {
  PosRecord r;
  r.src_gcell = {1, 2, 3};
  r.slot = static_cast<std::uint16_t>(slot);
  return r;
}

TEST(Endpoint, PacksFourRecordsPerPacket) {
  TwoNodes net;
  sim::Cycle now = 0;
  for (int i = 0; i < 8; ++i) net.a.enqueue(1, record(i));
  net.pump(now, 30);
  EXPECT_EQ(net.fabric.traffic().total_packets, 2u);
  // All 8 records arrive in order, one per poll.
  int seen = 0;
  for (sim::Cycle t = 0; t < 60; ++t) {
    if (auto r = net.b.poll_record(t)) {
      EXPECT_EQ(r->slot, seen);
      ++seen;
    }
  }
  EXPECT_EQ(seen, 8);
}

TEST(Endpoint, PartialPacketHeldUntilFlush) {
  TwoNodes net;
  sim::Cycle now = 0;
  for (int i = 0; i < 3; ++i) net.a.enqueue(1, record(i));
  net.pump(now, 20);
  EXPECT_EQ(net.fabric.traffic().total_packets, 0u) << "3 < 4: not ready";
  EXPECT_TRUE(net.a.egress_pending());
  net.a.flush_last({1});
  net.pump(now, 20);
  EXPECT_EQ(net.fabric.traffic().total_packets, 1u);
  EXPECT_FALSE(net.a.egress_pending());
}

TEST(Endpoint, LastEventSurfacesOnFinalPacket) {
  TwoNodes net;
  sim::Cycle now = 0;
  for (int i = 0; i < 5; ++i) net.a.enqueue(1, record(i));
  net.a.flush_last({1});
  net.pump(now, 40);
  int seen = 0;
  bool last_before_all_records = false;
  for (sim::Cycle t = 0; t < 80; ++t) {
    if (auto r = net.b.poll_record(t)) ++seen;
    for (NodeId src : net.b.take_last_events()) {
      EXPECT_EQ(src, 0);
      if (seen < 4) last_before_all_records = true;  // 2nd packet opened at >=4
    }
  }
  EXPECT_EQ(seen, 5);
  EXPECT_FALSE(last_before_all_records)
      << "last rides the final packet, not an earlier one";
}

TEST(Endpoint, EmptyLastPacketWhenNothingPending) {
  TwoNodes net;
  sim::Cycle now = 0;
  net.a.flush_last({1});
  net.pump(now, 20);
  EXPECT_EQ(net.fabric.traffic().total_packets, 1u);
  bool got_last = false;
  for (sim::Cycle t = 0; t < 40; ++t) {
    EXPECT_FALSE(net.b.poll_record(t).has_value());
    for (NodeId src : net.b.take_last_events()) {
      EXPECT_EQ(src, 0);
      got_last = true;
    }
  }
  EXPECT_TRUE(got_last);
}

TEST(Endpoint, CooldownPacesDepartures) {
  ChannelConfig config;
  config.link_latency = 5;
  config.cooldown = 10;
  Fabric<PosRecord> fabric(config);
  Endpoint<PosRecord> a(0, config), b(1, config);
  fabric.attach(&a);
  fabric.attach(&b);
  for (int i = 0; i < 12; ++i) a.enqueue(1, record(i));  // 3 full packets
  std::vector<sim::Cycle> departures;
  for (sim::Cycle now = 0; now < 100; ++now) {
    a.tick_egress(now, [&](const Packet<PosRecord>& p) {
      departures.push_back(now);
      fabric.send(p, now);
    });
  }
  ASSERT_EQ(departures.size(), 3u);
  EXPECT_GE(departures[1] - departures[0], 10u);
  EXPECT_GE(departures[2] - departures[1], 10u);
}

TEST(Endpoint, LinkLatencyDelaysArrival) {
  TwoNodes net;  // latency 10
  sim::Cycle now = 0;
  for (int i = 0; i < 4; ++i) net.a.enqueue(1, record(i));
  net.pump(now, 1);  // departs at cycle 0
  EXPECT_FALSE(net.b.poll_record(5).has_value());
  EXPECT_TRUE(net.b.poll_record(10).has_value());
}

TEST(Endpoint, IngressPendingTracksInFlightWork) {
  TwoNodes net;
  sim::Cycle now = 0;
  EXPECT_FALSE(net.b.ingress_pending());
  for (int i = 0; i < 4; ++i) net.a.enqueue(1, record(i));
  net.pump(now, 2);
  EXPECT_TRUE(net.b.ingress_pending()) << "packet in flight counts as pending";
  for (sim::Cycle t = 0; t < 40 && net.b.ingress_pending(); ++t) {
    net.b.poll_record(t + 10);
  }
  EXPECT_FALSE(net.b.ingress_pending());
}

TEST(Endpoint, FlushReleasesPackingBuffers) {
  TwoNodes net;
  sim::Cycle now = 0;
  EXPECT_EQ(net.a.packing_buffer_count(), 0u);
  net.a.enqueue(1, record(0));  // opens the dst-1 packing buffer
  EXPECT_EQ(net.a.packing_buffer_count(), 1u);
  net.a.flush_last({1});
  EXPECT_EQ(net.a.packing_buffer_count(), 0u)
      << "flush_last must release the stream's encapsulator registers";
  // Flushing with an empty (never-opened) buffer allocates nothing either.
  net.a.flush_last({1});
  EXPECT_EQ(net.a.packing_buffer_count(), 0u);
  net.pump(now, 40);
  // A full-and-cleared buffer also does not linger.
  for (int i = 0; i < 4; ++i) net.a.enqueue(1, record(i));
  net.a.flush_last({1});
  EXPECT_EQ(net.a.packing_buffer_count(), 0u);
}

TEST(Endpoint, FlushWithEmptyBufferStillSignalsLast) {
  TwoNodes net;
  sim::Cycle now = 0;
  net.a.enqueue(1, record(0));
  net.a.flush_last({1});  // partial packet, tagged last
  net.a.flush_last({1});  // nothing pending: must queue an empty last packet
  net.pump(now, 40);
  int last_events = 0;
  for (sim::Cycle t = 0; t < 80; ++t) {
    net.b.poll_record(t);
    last_events += static_cast<int>(net.b.take_last_events().size());
  }
  EXPECT_EQ(last_events, 2) << "each flush_last is its own stream boundary";
  EXPECT_EQ(net.fabric.traffic().total_packets, 2u);
}

TEST(Endpoint, IdleTrafficClassStillFlushesBoundaries) {
  // Regression: a traffic class a node never sends on (e.g. migrations in a
  // run where no particle crosses a node boundary) must still produce one
  // stream-end packet per flush_last, every iteration — the chained sync
  // counts those boundaries, so an idle link that skipped flush bookkeeping
  // would stall every peer waiting on it.
  TwoNodes net;
  sim::Cycle now = 0;
  int last_events = 0;
  for (int iteration = 0; iteration < 3; ++iteration) {
    net.a.flush_last({1});  // no traffic at all this stream
    net.pump(now, 40);
    for (; last_events < iteration + 1;) {
      ASSERT_LT(now, 400u) << "iteration " << iteration
                           << ": idle stream boundary never arrived";
      if (net.b.poll_record(now)) FAIL() << "idle stream delivered a record";
      last_events += static_cast<int>(net.b.take_last_events().size());
      net.pump(now, 1);
    }
    EXPECT_EQ(net.a.packing_buffer_count(), 0u);
    EXPECT_FALSE(net.a.egress_pending());
  }
  EXPECT_EQ(last_events, 3);
  EXPECT_EQ(net.fabric.traffic().total_packets, 3u);
}

TEST(Endpoint, RepeatedStreamReuse) {
  // Three streams back to back without draining in between: every stream
  // boundary must survive, and the packing map must not grow.
  TwoNodes net;
  sim::Cycle now = 0;
  for (int stream = 0; stream < 3; ++stream) {
    for (int i = 0; i < 5; ++i) net.a.enqueue(1, record(stream * 5 + i));
    net.a.flush_last({1});
    EXPECT_EQ(net.a.packing_buffer_count(), 0u);
  }
  net.pump(now, 80);
  int records = 0, last_events = 0;
  for (sim::Cycle t = 0; t < 200; ++t) {
    if (net.b.poll_record(t)) ++records;
    last_events += static_cast<int>(net.b.take_last_events().size());
  }
  EXPECT_EQ(records, 15);
  EXPECT_EQ(last_events, 3);
}

TEST(Fabric, TrafficMatrixPerPair) {
  ChannelConfig config = fast_config();
  Fabric<FrcRecord> fabric(config);
  Endpoint<FrcRecord> e0(0, config), e1(1, config), e2(2, config);
  fabric.attach(&e0);
  fabric.attach(&e1);
  fabric.attach(&e2);
  for (int i = 0; i < 4; ++i) e0.enqueue(1, FrcRecord{});
  for (int i = 0; i < 8; ++i) e0.enqueue(2, FrcRecord{});
  for (sim::Cycle now = 0; now < 50; ++now) {
    e0.tick_egress(now, [&](const Packet<FrcRecord>& p) { fabric.send(p, now); });
    fabric.commit();
  }
  const auto& t = fabric.traffic();
  EXPECT_EQ(t.packets.at({0, 1}), 1u);
  EXPECT_EQ(t.packets.at({0, 2}), 2u);
  EXPECT_EQ(t.total_packets, 3u);
}

// ---------------------------------------------------------------- wire fuzz
// ProcTransport ships staged fabric deliveries between worker processes via
// net::wire, so the codec must round-trip every field bit-exactly and
// reject damaged buffers (DESIGN.md §14).

geom::IVec3 rand_ivec3(util::Xoshiro256& rng) {
  return {static_cast<int>(rng() % 64) - 32,
          static_cast<int>(rng() % 64) - 32,
          static_cast<int>(rng() % 64) - 32};
}

geom::Vec3f rand_vec3f(util::Xoshiro256& rng) {
  const auto f = [&] {
    return static_cast<float>(static_cast<std::int64_t>(rng() % 2000001) -
                              1000000) /
           1000.0f;
  };
  return {f(), f(), f()};
}

fixed::FixedVec3 rand_fixed3(util::Xoshiro256& rng) {
  return {fixed::FixedCoord::from_raw(static_cast<std::uint32_t>(rng())),
          fixed::FixedCoord::from_raw(static_cast<std::uint32_t>(rng())),
          fixed::FixedCoord::from_raw(static_cast<std::uint32_t>(rng()))};
}

PosRecord rand_record(util::Xoshiro256& rng, PosRecord*) {
  PosRecord r;
  r.src_gcell = rand_ivec3(rng);
  r.offset = rand_fixed3(rng);
  r.elem = static_cast<md::ElementId>(rng());
  r.slot = static_cast<std::uint16_t>(rng());
  return r;
}

FrcRecord rand_record(util::Xoshiro256& rng, FrcRecord*) {
  FrcRecord r;
  r.dest_gcell = rand_ivec3(rng);
  r.force = rand_vec3f(rng);
  r.slot = static_cast<std::uint16_t>(rng());
  return r;
}

MigRecord rand_record(util::Xoshiro256& rng, MigRecord*) {
  MigRecord r;
  r.dest_gcell = rand_ivec3(rng);
  r.offset = rand_fixed3(rng);
  r.vel = rand_vec3f(rng);
  r.elem = static_cast<md::ElementId>(rng());
  r.particle_id = static_cast<std::uint32_t>(rng());
  return r;
}

template <class R>
Packet<R> rand_packet(util::Xoshiro256& rng) {
  Packet<R> p;
  p.kind = rng() % 4 == 0 ? PacketKind::kControl : PacketKind::kData;
  p.seq = rng();
  p.ack = rng();
  p.nack = rng();
  p.has_nack = rng() % 2 == 0;
  p.retransmit = rng() % 2 == 0;
  p.last = rng() % 2 == 0;
  p.src = static_cast<NodeId>(rng() % 64);
  p.dst = static_cast<NodeId>(rng() % 64);
  p.count = static_cast<int>(rng() % (kRecordsPerPacket + 1));
  for (int i = 0; i < p.count; ++i) {
    p.records[static_cast<std::size_t>(i)] =
        rand_record(rng, static_cast<R*>(nullptr));
  }
  p.crc = packet_crc(p);
  return p;
}

void expect_packet_eq(const Packet<PosRecord>& a, const Packet<PosRecord>& b) {
  for (int i = 0; i < a.count; ++i) {
    const auto s = static_cast<std::size_t>(i);
    EXPECT_EQ(a.records[s].src_gcell, b.records[s].src_gcell);
    EXPECT_EQ(a.records[s].offset, b.records[s].offset);
    EXPECT_EQ(a.records[s].elem, b.records[s].elem);
    EXPECT_EQ(a.records[s].slot, b.records[s].slot);
  }
}

void expect_packet_eq(const Packet<FrcRecord>& a, const Packet<FrcRecord>& b) {
  for (int i = 0; i < a.count; ++i) {
    const auto s = static_cast<std::size_t>(i);
    EXPECT_EQ(a.records[s].dest_gcell, b.records[s].dest_gcell);
    EXPECT_EQ(a.records[s].force.x, b.records[s].force.x);
    EXPECT_EQ(a.records[s].force.y, b.records[s].force.y);
    EXPECT_EQ(a.records[s].force.z, b.records[s].force.z);
    EXPECT_EQ(a.records[s].slot, b.records[s].slot);
  }
}

void expect_packet_eq(const Packet<MigRecord>& a, const Packet<MigRecord>& b) {
  for (int i = 0; i < a.count; ++i) {
    const auto s = static_cast<std::size_t>(i);
    EXPECT_EQ(a.records[s].dest_gcell, b.records[s].dest_gcell);
    EXPECT_EQ(a.records[s].offset, b.records[s].offset);
    EXPECT_EQ(a.records[s].vel.x, b.records[s].vel.x);
    EXPECT_EQ(a.records[s].vel.y, b.records[s].vel.y);
    EXPECT_EQ(a.records[s].vel.z, b.records[s].vel.z);
    EXPECT_EQ(a.records[s].elem, b.records[s].elem);
    EXPECT_EQ(a.records[s].particle_id, b.records[s].particle_id);
  }
}

template <class R>
void fuzz_round_trip(std::uint64_t seed, int iters) {
  util::Xoshiro256 rng(seed);
  for (int it = 0; it < iters; ++it) {
    const Packet<R> p = rand_packet<R>(rng);
    const std::vector<std::uint8_t> bytes = wire::encode_packet(p);

    // Field-wise round trip + the field-wise digest still verifies.
    Packet<R> q;
    ASSERT_TRUE(wire::decode_packet(bytes, q));
    EXPECT_EQ(q.kind, p.kind);
    EXPECT_EQ(q.seq, p.seq);
    EXPECT_EQ(q.ack, p.ack);
    EXPECT_EQ(q.nack, p.nack);
    EXPECT_EQ(q.has_nack, p.has_nack);
    EXPECT_EQ(q.retransmit, p.retransmit);
    EXPECT_EQ(q.last, p.last);
    EXPECT_EQ(q.src, p.src);
    EXPECT_EQ(q.dst, p.dst);
    EXPECT_EQ(q.count, p.count);
    EXPECT_EQ(q.crc, p.crc);
    expect_packet_eq(p, q);
    EXPECT_EQ(packet_crc(q), q.crc);

    // Every truncation is rejected (never reads out of bounds, never
    // "succeeds" on a prefix).
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      std::vector<std::uint8_t> trunc(bytes.begin(),
                                      bytes.begin() + static_cast<std::ptrdiff_t>(cut));
      Packet<R> t;
      EXPECT_FALSE(wire::decode_packet(trunc, t)) << "cut=" << cut;
    }

    // A single flipped bit anywhere is rejected via the trailing CRC.
    std::vector<std::uint8_t> flipped = bytes;
    const std::size_t byte = rng() % flipped.size();
    flipped[byte] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    Packet<R> f;
    EXPECT_FALSE(wire::decode_packet(flipped, f)) << "flip byte=" << byte;

    // Trailing garbage is rejected too.
    std::vector<std::uint8_t> padded = bytes;
    padded.push_back(0);
    Packet<R> g;
    EXPECT_FALSE(wire::decode_packet(padded, g));
  }
}

TEST(WireFuzz, PosPacketRoundTrip) { fuzz_round_trip<PosRecord>(0xF00D, 200); }

TEST(WireFuzz, FrcPacketRoundTrip) { fuzz_round_trip<FrcRecord>(0xBEEF, 200); }

TEST(WireFuzz, MigPacketRoundTrip) { fuzz_round_trip<MigRecord>(0xCAFE, 200); }

TEST(WireFuzz, ShapeViolationsRejected) {
  util::Xoshiro256 rng(7);
  Packet<PosRecord> p = rand_packet<PosRecord>(rng);
  p.count = 2;
  p.crc = packet_crc(p);

  // Re-encode with a bad count but a fixed-up trailing CRC: the shape check
  // itself must reject, not just the checksum.
  const auto reencode_with_count = [&](std::int32_t count) {
    util::ByteWriter w;
    wire::put_packet(w, p);
    std::vector<std::uint8_t> bytes = w.take();
    // Count sits after kind(1) + seq/ack/nack(24) + has_nack(1) = offset 26.
    for (int i = 0; i < 4; ++i) {
      bytes[26 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(static_cast<std::uint32_t>(count) >> (8 * i));
    }
    util::Crc32 crc;
    crc.add_bytes(bytes.data(), bytes.size());
    util::ByteWriter tail;
    tail.u32(crc.value());
    bytes.insert(bytes.end(), tail.data().begin(), tail.data().end());
    return bytes;
  };

  Packet<PosRecord> out;
  EXPECT_FALSE(
      wire::decode_packet(reencode_with_count(kRecordsPerPacket + 1), out));
  EXPECT_FALSE(wire::decode_packet(reencode_with_count(-1), out));
  EXPECT_TRUE(wire::decode_packet(reencode_with_count(2), out));
}

}  // namespace
}  // namespace fasda::net
