// Serve-grade test battery for fasda_serve (DESIGN.md §15).
//
// Four pillars:
//   1. End-to-end determinism: a job submitted through the daemon over a
//      real loopback socket is bitwise identical to a direct
//      serve::execute_job() run — for 1/2/4 queue workers and across two
//      daemon restarts.
//   2. Fault battery: client disconnect mid-job, malformed / oversized /
//      bad-CRC frames, queue-full admission rejection, SIGTERM drain.
//   3. Protocol codec fuzz: round-trip, truncation, bit flips, duplicated
//      length prefixes, random chunking (the net_test WireFuzz style).
//   4. The queue/admission/JSON building blocks in isolation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <random>
#include <thread>

#include "fasda/serve/client.hpp"
#include "fasda/serve/job.hpp"
#include "fasda/serve/json.hpp"
#include "fasda/serve/queue.hpp"
#include "fasda/serve/server.hpp"
#include "fasda/serve/wire.hpp"

using namespace fasda;
using namespace fasda::serve;

namespace {

JobRequest small_functional_job() {
  JobRequest req;
  req.engine = "functional";
  req.space = "333";
  req.per_cell = 4;
  req.steps = 4;
  req.sample = 2;
  req.replicas = 3;
  req.batch_workers = 2;
  req.return_state = true;
  return req;
}

JobRequest small_cycle_job() {
  JobRequest req;
  req.engine = "cycle";
  req.space = "333";
  req.per_cell = 4;
  req.steps = 2;
  req.sample = 1;
  req.replicas = 2;
  req.return_state = true;
  return req;
}

/// The determinism canonicalization: job ids are assigned by whichever
/// server ran the job, so they are the one field excluded (with wall time)
/// from the bitwise contract.
std::string canon(JobResult result) {
  result.job_id = 0;
  return result.to_json(/*deterministic_only=*/true);
}

ServerConfig test_config() {
  ServerConfig config;
  config.recv_timeout_seconds = 60;
  return config;
}

}  // namespace

// ====================================================================
// 1. End-to-end determinism through the daemon
// ====================================================================

// The same request, run directly and through daemons with 1, 2 and 4
// queue workers, produces byte-identical results — energies as f64 bit
// patterns and the full hex-encoded final state included.
TEST(ServeDeterminism, DaemonMatchesDirectForAnyQueueWorkerCount) {
  for (const JobRequest& req :
       {small_functional_job(), small_cycle_job()}) {
    const std::string direct = canon(execute_job(0, req));
    for (const std::size_t workers : {1u, 2u, 4u}) {
      ServerConfig config = test_config();
      config.queue_workers = workers;
      Server server(config);
      server.start();
      Client client("127.0.0.1", server.port());
      // Two copies back to back so multi-worker servers actually overlap
      // executions while we check each result.
      const auto a = client.submit(req);
      const auto b = client.submit(req);
      ASSERT_TRUE(a.accepted) << a.reason;
      ASSERT_TRUE(b.accepted) << b.reason;
      EXPECT_EQ(canon(client.wait_result(a.job_id)), direct)
          << req.engine << " workers=" << workers;
      EXPECT_EQ(canon(client.wait_result(b.job_id)), direct)
          << req.engine << " workers=" << workers;
      server.drain_and_stop();
    }
  }
}

// Restarting the daemon does not change results: two fresh server
// instances (fresh sockets, fresh queues, fresh job-id spaces) return the
// same bytes for the same request.
TEST(ServeDeterminism, ResultsSurviveDaemonRestarts) {
  const JobRequest req = small_functional_job();
  std::string first;
  for (int incarnation = 0; incarnation < 2; ++incarnation) {
    ServerConfig config = test_config();
    config.queue_workers = 2;
    Server server(config);
    server.start();
    Client client("127.0.0.1", server.port());
    const auto outcome = client.run_job(req);
    ASSERT_TRUE(outcome.reply.accepted);
    ASSERT_TRUE(outcome.result.has_value());
    if (incarnation == 0) {
      first = canon(*outcome.result);
    } else {
      EXPECT_EQ(canon(*outcome.result), first);
    }
    server.drain_and_stop();
  }
  EXPECT_EQ(first, canon(execute_job(0, req)));
}

// Streaming status: a sampled job pushes kStatus frames sourced from the
// per-job obs metrics registry, and kQuery snapshots the same registry.
TEST(ServeDeterminism, StatusStreamsFromObsRegistry) {
  ServerConfig config = test_config();
  config.queue_workers = 1;
  Server server(config);
  server.start();
  Client client("127.0.0.1", server.port());

  JobRequest req = small_functional_job();
  req.replicas = 1;
  req.sample = 1;  // a push per sampled block: steps 0..4 -> 5 pushes
  const auto outcome = client.run_job(req);
  ASSERT_TRUE(outcome.reply.accepted);
  ASSERT_TRUE(outcome.result.has_value());
  EXPECT_EQ(outcome.result->outcome, JobOutcome::kOk);
  EXPECT_GE(outcome.status_frames, 2);

  Client prober("127.0.0.1", server.port());
  bool rejected = true;
  const std::string status = prober.query(outcome.reply.job_id, rejected);
  ASSERT_FALSE(rejected);
  std::string error;
  const auto v = json::parse(status, &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->find("state")->str_or(""), "done");
  // The metrics snapshot carries the per-replica gauges the status
  // publisher wrote and the serve.samples counter.
  EXPECT_NE(status.find("serve.r0.step"), std::string::npos);
  EXPECT_NE(status.find("serve.samples"), std::string::npos);
  ASSERT_NE(v->find("result"), nullptr);
  server.drain_and_stop();
}

// ====================================================================
// 2. Fault battery
// ====================================================================

// A client that vanishes mid-job doesn't strand the job: it completes,
// is reaped into the result history, and any other tenant can query it.
TEST(ServeFaults, ClientDisconnectMidJobIsReapedAndQueryable) {
  ServerConfig config = test_config();
  config.queue_workers = 1;
  Server server(config);
  server.start();

  std::uint64_t job_id = 0;
  {
    Client client("127.0.0.1", server.port());
    JobRequest req = small_functional_job();
    req.per_cell = 8;
    req.steps = 100;
    req.sample = 10;
    req.replicas = 1;
    const auto reply = client.submit(req);
    ASSERT_TRUE(reply.accepted) << reply.reason;
    job_id = reply.job_id;
    // Client destructor closes the socket while the job (very likely)
    // still runs; the server must keep running it regardless.
  }

  Client prober("127.0.0.1", server.port());
  std::string state;
  for (int i = 0; i < 600 && state != "done"; ++i) {
    bool rejected = true;
    const std::string status = prober.query(job_id, rejected);
    ASSERT_FALSE(rejected) << status;
    std::string error;
    const auto v = json::parse(status, &error);
    ASSERT_TRUE(v.has_value()) << error;
    state = v->find("state")->str_or("");
    if (state != "done") {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_EQ(state, "done");
  EXPECT_EQ(server.jobs_completed(), 1u);
  server.drain_and_stop();
}

// Frame-level garbage gets a typed kError and a closed connection — and a
// concurrent well-behaved tenant on another connection is unaffected.
TEST(ServeFaults, DamagedFramesGetTypedErrorsWithoutCollateral) {
  ServerConfig config = test_config();
  config.queue_workers = 1;
  Server server(config);
  server.start();

  struct Case {
    const char* expect;
    std::function<std::vector<std::uint8_t>()> make;
  };
  const std::vector<Case> cases = {
      {"bad-crc",
       [] {
         auto buf = encode_frame(MsgType::kPing, "{}");
         buf[buf.size() - 1] ^= 0x01;  // corrupt the payload
         return buf;
       }},
      {"bad-length",
       [] {
         // Header claiming a frame far over kMaxFrameBytes.
         std::vector<std::uint8_t> buf(8, 0);
         buf[3] = 0x7f;  // length = 0x7f000000
         return buf;
       }},
      {"bad-type",
       [] {
         // CRC-valid frame with an unassigned type byte.
         auto buf = encode_frame(MsgType::kPing, "{}");
         const std::uint8_t bogus = 200;
         util::Crc32 crc;
         crc.add_bytes(&bogus, 1);
         const char* payload = "{}";
         crc.add_bytes(payload, 2);
         buf[8] = bogus;
         const std::uint32_t c = crc.value();
         buf[4] = static_cast<std::uint8_t>(c);
         buf[5] = static_cast<std::uint8_t>(c >> 8);
         buf[6] = static_cast<std::uint8_t>(c >> 16);
         buf[7] = static_cast<std::uint8_t>(c >> 24);
         return buf;
       }},
  };

  for (const Case& c : cases) {
    Conn attacker = dial("127.0.0.1", server.port());
    attacker.set_recv_timeout(30);
    const auto buf = c.make();
    attacker.send_raw(buf.data(), buf.size());
    WireFrame frame;
    ASSERT_EQ(attacker.recv(frame), DecodeStatus::kFrame) << c.expect;
    EXPECT_EQ(frame.type, MsgType::kError);
    EXPECT_NE(frame.payload.find(c.expect), std::string::npos)
        << frame.payload;
    // The server closes after the kError; the next read hits EOF.
    EXPECT_THROW(attacker.recv(frame), WireError);
  }

  // Other tenants never noticed.
  Client bystander("127.0.0.1", server.port());
  JobRequest req = small_functional_job();
  req.replicas = 1;
  const auto outcome = bystander.run_job(req);
  ASSERT_TRUE(outcome.reply.accepted);
  EXPECT_EQ(outcome.result->outcome, JobOutcome::kOk);
  server.drain_and_stop();
}

// Payload-level failures (valid frame, bad request) keep the connection
// open: the tenant can fix the request and resubmit on the same socket.
TEST(ServeFaults, BadRequestKeepsConnectionOpen) {
  ServerConfig config = test_config();
  config.queue_workers = 1;
  Server server(config);
  server.start();
  Client client("127.0.0.1", server.port());

  client.conn().send(MsgType::kSubmit, "this is not json");
  WireFrame frame;
  ASSERT_EQ(client.conn().recv(frame), DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, MsgType::kRejected);
  EXPECT_NE(frame.payload.find("bad-request"), std::string::npos);

  JobRequest bad = small_functional_job();
  bad.space = "222";  // fails validate(): CellGrid needs >= 3 per axis
  const auto rejected = client.submit(bad);
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.reason, "bad-request");
  EXPECT_NE(rejected.detail.find("space"), std::string::npos);

  JobRequest good = small_functional_job();
  good.replicas = 1;
  const auto outcome = client.run_job(good);
  ASSERT_TRUE(outcome.reply.accepted);
  EXPECT_EQ(outcome.result->outcome, JobOutcome::kOk);
  server.drain_and_stop();
}

// Admission control: a full queue and an exhausted tenant quota reject
// with their typed reasons while other tenants still get in.
TEST(ServeFaults, QueueFullAndTenantQuotaRejectWithReasons) {
  ServerConfig config = test_config();
  config.queue_workers = 0;  // admission-only: nothing ever starts
  config.queue.capacity = 2;
  config.queue.tenant_quota = 1;
  Server server(config);
  server.start();
  Client client("127.0.0.1", server.port());

  JobRequest req = small_functional_job();
  req.tenant = "alpha";
  ASSERT_TRUE(client.submit(req).accepted);

  // Same tenant again: over quota.
  const auto quota = client.submit(req);
  EXPECT_FALSE(quota.accepted);
  EXPECT_EQ(quota.reason, "tenant-quota");

  // Another tenant fits (capacity 2).
  req.tenant = "beta";
  ASSERT_TRUE(client.submit(req).accepted);

  // Queue full beats quota for a third tenant.
  req.tenant = "gamma";
  const auto full = client.submit(req);
  EXPECT_FALSE(full.accepted);
  EXPECT_EQ(full.reason, "queue-full");

  EXPECT_EQ(server.jobs_submitted(), 2u);
  EXPECT_GE(server.jobs_rejected(), 2u);
}

// SIGTERM starts a graceful drain: admitted jobs finish, new submits are
// refused with "draining", and drain_and_stop returns with nothing lost.
TEST(ServeFaults, SigtermDrainsGracefully) {
  ServerConfig config = test_config();
  config.queue_workers = 1;
  Server server(config);
  server.start();
  Client client("127.0.0.1", server.port());

  JobRequest req = small_functional_job();
  req.replicas = 1;
  const auto a = client.submit(req);
  const auto b = client.submit(req);
  ASSERT_TRUE(a.accepted);
  ASSERT_TRUE(b.accepted);

  Server::install_signal_drain(&server);
  std::raise(SIGTERM);
  server.wait_for_drain_signal();
  Server::install_signal_drain(nullptr);
  EXPECT_TRUE(server.draining());

  const auto refused = client.submit(req);
  EXPECT_FALSE(refused.accepted);
  EXPECT_EQ(refused.reason, "draining");

  // Both admitted jobs still complete, correctly.
  EXPECT_EQ(client.wait_result(a.job_id).outcome, JobOutcome::kOk);
  EXPECT_EQ(client.wait_result(b.job_id).outcome, JobOutcome::kOk);
  server.drain_and_stop();
  EXPECT_EQ(server.jobs_completed(), 2u);
}

// A long-running daemon must not accumulate dead connections: each closed
// client's fd and thread are reaped, and the acceptor keeps accepting.
TEST(ServeFaults, ClosedConnectionsAreReaped) {
  ServerConfig config = test_config();
  config.queue_workers = 1;
  Server server(config);
  server.start();

  for (int round = 0; round < 8; ++round) {
    Client client("127.0.0.1", server.port());
    std::string error;
    ASSERT_TRUE(json::parse(client.ping(), &error).has_value()) << error;
    // Client destructor closes the socket; the connection thread notices,
    // removes itself from the registry and parks its handle for joining.
  }
  std::size_t live = 1;
  for (int i = 0; i < 500 && live != 0; ++i) {
    live = server.connections();
    if (live != 0) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(live, 0u);

  // And the daemon still serves fresh connections afterwards.
  Client again("127.0.0.1", server.port());
  JobRequest req = small_functional_job();
  req.replicas = 1;
  const auto outcome = again.run_job(req);
  ASSERT_TRUE(outcome.reply.accepted);
  EXPECT_EQ(outcome.result->outcome, JobOutcome::kOk);
  server.drain_and_stop();
}

// A peer that stops reading cannot hold a sending thread forever: with a
// send timeout armed, the blocking send surfaces as WireError once the
// TCP buffers fill (this is what frees a queue worker from a tenant that
// submits a job and then never drains its kStatus/kResult pushes).
TEST(ServeFaults, SendTimesOutWhenPeerStopsReading) {
  auto [listen_fd, port] = listen_on("127.0.0.1", 0);
  Conn sender = dial("127.0.0.1", port);
  const int peer_fd = ::accept(listen_fd, nullptr, nullptr);
  ASSERT_GE(peer_fd, 0);
  Conn peer(peer_fd);  // never reads
  int small = 4096;
  ::setsockopt(sender.fd(), SOL_SOCKET, SO_SNDBUF, &small, sizeof small);
  sender.set_send_timeout(1);
  const std::string payload(1u << 20, 'x');
  EXPECT_THROW(
      {
        // Far more than any kernel default buffering; must throw, not hang
        // (the ctest TIMEOUT backstop would catch a regression to forever).
        for (int i = 0; i < 64; ++i) sender.send(MsgType::kStatus, payload);
      },
      WireError);
  ::close(listen_fd);
}

// kPing reports live server stats.
TEST(ServeFaults, PingReportsServerStats) {
  ServerConfig config = test_config();
  config.queue_workers = 1;
  Server server(config);
  server.start();
  Client client("127.0.0.1", server.port());
  JobRequest req = small_functional_job();
  req.replicas = 1;
  const auto outcome = client.run_job(req);
  ASSERT_TRUE(outcome.reply.accepted);

  std::string error;
  const auto v = json::parse(client.ping(), &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->find("submitted")->int_or(-1), 1);
  EXPECT_EQ(v->find("completed")->int_or(-1), 1);
  EXPECT_EQ(v->find("draining")->bool_or(true), false);
  server.drain_and_stop();
}

// ====================================================================
// 2b. Wall-clock observability plane (kStats, DESIGN.md §17)
// ====================================================================

// After a mixed two-tenant workload the kStats surface serves both bodies:
// the JSON form parses and nests the health summary plus the wall-metric
// series, and the Prometheus form carries native histograms (cumulative
// le buckets, exact _sum/_count) and lazily-registered per-tenant
// counters.
TEST(ServeObs, StatsServesJsonAndPrometheusAfterMixedWorkload) {
  ServerConfig config = test_config();
  config.queue_workers = 2;
  Server server(config);
  server.start();
  Client client("127.0.0.1", server.port());

  JobRequest req = small_functional_job();
  req.replicas = 1;
  std::vector<std::uint64_t> ids;
  for (const char* tenant : {"acme", "acme", "globex"}) {
    req.tenant = tenant;
    const auto reply = client.submit(req);
    ASSERT_TRUE(reply.accepted) << reply.reason;
    ids.push_back(reply.job_id);
  }
  for (const std::uint64_t id : ids) {
    EXPECT_EQ(client.wait_result(id).outcome, JobOutcome::kOk);
  }

  std::string error;
  const auto v = json::parse(client.stats("json"), &error);
  ASSERT_TRUE(v.has_value()) << error;
  const json::Value* health = v->find("server");
  ASSERT_NE(health, nullptr);
  EXPECT_EQ(health->find("submitted")->int_or(-1), 3);
  EXPECT_EQ(health->find("completed")->int_or(-1), 3);
  const json::Value* wall = v->find("wall");
  ASSERT_NE(wall, nullptr);
  ASSERT_NE(wall->find("metrics"), nullptr);
  EXPECT_TRUE(wall->find("metrics")->is_array());
  EXPECT_GE(v->find("trace_events")->int_or(0), 3 * 5);

  const std::string prom = client.stats("prometheus");
  EXPECT_NE(prom.find("# TYPE fasda_serve_jobs_submitted counter"),
            std::string::npos);
  EXPECT_NE(prom.find("fasda_serve_jobs_submitted 3\n"), std::string::npos);
  EXPECT_NE(prom.find("fasda_serve_jobs_completed 3\n"), std::string::npos);
  EXPECT_NE(prom.find("fasda_serve_tenant_acme_submitted 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("fasda_serve_tenant_globex_submitted 1\n"),
            std::string::npos);
  // The latency histograms really observed the three jobs: native
  // exposition with cumulative buckets and an exact count.
  EXPECT_NE(prom.find("fasda_serve_latency_submit_to_result_us_bucket{le="),
            std::string::npos);
  EXPECT_NE(prom.find("fasda_serve_latency_submit_to_result_us_count 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("fasda_serve_latency_queue_wait_us_count 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("fasda_serve_latency_execute_us_sum"),
            std::string::npos);
  server.drain_and_stop();
}

// A bad format is a typed rejection (connection stays usable), and the
// stats surface keeps answering while the daemon drains — exactly when an
// operator most wants a scrape to work.
TEST(ServeObs, StatsRejectsBadFormatAndAnswersWhileDraining) {
  ServerConfig config = test_config();
  config.queue_workers = 1;
  Server server(config);
  server.start();
  Client client("127.0.0.1", server.port());

  EXPECT_THROW(client.stats("xml"), WireError);
  // Same connection still serves a good request after the rejection.
  EXPECT_NE(client.stats("prometheus").find("fasda_serve_uptime_seconds"),
            std::string::npos);

  JobRequest req = small_functional_job();
  req.replicas = 1;
  const auto reply = client.submit(req);
  ASSERT_TRUE(reply.accepted);
  EXPECT_EQ(client.wait_result(reply.job_id).outcome, JobOutcome::kOk);

  server.begin_drain();
  std::string error;
  const auto v = json::parse(client.stats("json"), &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->find("server")->find("draining")->bool_or(false), true);
  EXPECT_EQ(v->find("server")->find("completed")->int_or(-1), 1);
  server.drain_and_stop();
}

// The guard the two-plane contract hangs on: switching the wall-clock
// plane fully on (metrics + tracing) or fully off cannot change a single
// result byte. Both runs must match the direct execute_job() bytes.
TEST(ServeObs, DeterminismIsUnaffectedByObservability) {
  const JobRequest req = small_cycle_job();
  const std::string direct = canon(execute_job(0, req));
  for (const bool wall_obs : {false, true}) {
    ServerConfig config = test_config();
    config.queue_workers = 2;
    config.wall_obs = wall_obs;
    Server server(config);
    server.start();
    Client client("127.0.0.1", server.port());
    const auto a = client.submit(req);
    const auto b = client.submit(req);
    ASSERT_TRUE(a.accepted) << a.reason;
    ASSERT_TRUE(b.accepted) << b.reason;
    EXPECT_EQ(canon(client.wait_result(a.job_id)), direct)
        << "wall_obs=" << wall_obs;
    EXPECT_EQ(canon(client.wait_result(b.job_id)), direct)
        << "wall_obs=" << wall_obs;
    // With the plane off, no spans may be recorded at all.
    if (!wall_obs) {
      EXPECT_EQ(server.wall_trace().size(), 0u);
    }
    server.drain_and_stop();
  }
}

// ====================================================================
// 3. Protocol codec fuzz (WireFuzz style)
// ====================================================================

namespace {

std::string rand_payload(std::mt19937& rng) {
  std::uniform_int_distribution<int> len(0, 300);
  std::uniform_int_distribution<int> byte(0, 255);
  std::string s(static_cast<std::size_t>(len(rng)), '\0');
  for (char& c : s) c = static_cast<char>(byte(rng));
  return s;
}

MsgType rand_type(std::mt19937& rng) {
  static const MsgType kTypes[] = {
      MsgType::kSubmit,   MsgType::kQuery,  MsgType::kPing,
      MsgType::kAccepted, MsgType::kRejected, MsgType::kStatus,
      MsgType::kResult,   MsgType::kPong,   MsgType::kError,
  };
  std::uniform_int_distribution<std::size_t> pick(0, 8);
  return kTypes[pick(rng)];
}

}  // namespace

TEST(ServeWireFuzz, RandomFramesRoundTripThroughRandomChunking) {
  std::mt19937 rng(0x5eed);
  for (int iter = 0; iter < 200; ++iter) {
    const int count = 1 + static_cast<int>(rng() % 5);
    std::vector<WireFrame> sent;
    std::vector<std::uint8_t> stream;
    for (int i = 0; i < count; ++i) {
      WireFrame f;
      f.type = rand_type(rng);
      f.payload = rand_payload(rng);
      const auto buf = encode_frame(f.type, f.payload);
      stream.insert(stream.end(), buf.begin(), buf.end());
      sent.push_back(std::move(f));
    }
    FrameDecoder decoder;
    std::vector<WireFrame> got;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng() % 17, stream.size() - off);
      decoder.feed(stream.data() + off, chunk);
      off += chunk;
      for (;;) {
        WireFrame f;
        const DecodeStatus st = decoder.next(f);
        if (st == DecodeStatus::kNeedMore) break;
        ASSERT_EQ(st, DecodeStatus::kFrame);
        got.push_back(std::move(f));
      }
    }
    ASSERT_EQ(got.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(got[i].type, sent[i].type);
      EXPECT_EQ(got[i].payload, sent[i].payload);
    }
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(ServeWireFuzz, EveryTruncationAsksForMore) {
  const auto buf = encode_frame(MsgType::kSubmit, "{\"steps\":4}");
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(buf.data(), cut);
    WireFrame f;
    EXPECT_EQ(decoder.next(f), DecodeStatus::kNeedMore) << "cut=" << cut;
  }
}

TEST(ServeWireFuzz, EverySingleBitFlipIsRejected) {
  const auto clean = encode_frame(MsgType::kQuery, "{\"job\":12345}");
  for (std::size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto buf = clean;
      buf[byte] ^= static_cast<std::uint8_t>(1 << bit);
      FrameDecoder decoder;
      decoder.feed(buf.data(), buf.size());
      WireFrame f;
      const DecodeStatus st = decoder.next(f);
      // A flip in the length prefix may leave the decoder waiting for a
      // longer frame; every other flip must be a typed rejection. No flip
      // may ever produce a valid frame.
      EXPECT_NE(st, DecodeStatus::kFrame)
          << "byte=" << byte << " bit=" << bit;
    }
  }
}

TEST(ServeWireFuzz, OversizedAndZeroLengthsAreRejected) {
  for (const std::uint32_t length : {0u, kMaxFrameBytes + 1, 0xffffffffu}) {
    std::vector<std::uint8_t> buf(9, 0);
    buf[0] = static_cast<std::uint8_t>(length);
    buf[1] = static_cast<std::uint8_t>(length >> 8);
    buf[2] = static_cast<std::uint8_t>(length >> 16);
    buf[3] = static_cast<std::uint8_t>(length >> 24);
    FrameDecoder decoder;
    decoder.feed(buf.data(), buf.size());
    WireFrame f;
    EXPECT_EQ(decoder.next(f), DecodeStatus::kBadLength) << length;
  }
}

TEST(ServeWireFuzz, DuplicatedLengthPrefixDesyncsToTypedError) {
  const auto clean = encode_frame(MsgType::kPing, "{}");
  // Duplicate the 4-byte length prefix: [len][len][crc][type][payload].
  std::vector<std::uint8_t> buf(clean.begin(), clean.begin() + 4);
  buf.insert(buf.end(), clean.begin(), clean.end());
  FrameDecoder decoder;
  decoder.feed(buf.data(), buf.size());
  WireFrame f;
  const DecodeStatus st = decoder.next(f);
  EXPECT_TRUE(st == DecodeStatus::kBadCrc || st == DecodeStatus::kBadLength ||
              st == DecodeStatus::kBadType)
      << decode_status_name(st);
}

TEST(ServeWireFuzz, UnknownTypeWithValidCrcIsBadType) {
  const std::uint8_t bogus = 42;  // in the gap between request/reply ranges
  ASSERT_FALSE(msg_type_known(bogus));
  util::Crc32 crc;
  crc.add_bytes(&bogus, 1);
  std::vector<std::uint8_t> buf;
  const std::uint32_t length = 1;
  const std::uint32_t c = crc.value();
  for (const std::uint32_t v : {length, c}) {
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
    buf.push_back(static_cast<std::uint8_t>(v >> 16));
    buf.push_back(static_cast<std::uint8_t>(v >> 24));
  }
  buf.push_back(bogus);
  FrameDecoder decoder;
  decoder.feed(buf.data(), buf.size());
  WireFrame f;
  EXPECT_EQ(decoder.next(f), DecodeStatus::kBadType);
}

TEST(ServeWireFuzz, EncodeEnforcesTheFrameCap) {
  // The largest legal payload round-trips...
  const std::string max_ok(kMaxFrameBytes - 1, 'a');
  const auto buf = encode_frame(MsgType::kStatus, max_ok);
  FrameDecoder decoder;
  decoder.feed(buf.data(), buf.size());
  WireFrame f;
  ASSERT_EQ(decoder.next(f), DecodeStatus::kFrame);
  EXPECT_EQ(f.payload.size(), max_ok.size());
  // ...and one byte more fails loudly on the sending side instead of
  // poisoning the peer's decoder with kBadLength.
  const std::string too_big(kMaxFrameBytes, 'a');
  EXPECT_THROW(encode_frame(MsgType::kStatus, too_big), WireError);
}

TEST(ServeWireFuzz, ProtocolErrorsPoisonTheStream) {
  auto bad = encode_frame(MsgType::kPing, "{}");
  bad[8] ^= 0xff;  // corrupt -> kBadCrc
  FrameDecoder decoder;
  decoder.feed(bad.data(), bad.size());
  WireFrame f;
  ASSERT_EQ(decoder.next(f), DecodeStatus::kBadCrc);
  // Even a pristine frame afterwards cannot resynchronize the stream.
  const auto good = encode_frame(MsgType::kPing, "{}");
  decoder.feed(good.data(), good.size());
  EXPECT_EQ(decoder.next(f), DecodeStatus::kBadCrc);
}

// ====================================================================
// 4. Building blocks: queue, JSON, job codecs
// ====================================================================

TEST(ServeQueue, PriorityOrderWithDeterministicArrivalTieBreak) {
  JobQueue queue(QueueConfig{});
  std::vector<int> ran;
  const auto job = [&ran](int id) { return [&ran, id] { ran.push_back(id); }; };
  ASSERT_EQ(queue.submit("t", 0, job(1)).status, Admit::kAdmitted);
  ASSERT_EQ(queue.submit("t", 5, job(2)).status, Admit::kAdmitted);
  ASSERT_EQ(queue.submit("t", 0, job(3)).status, Admit::kAdmitted);
  ASSERT_EQ(queue.submit("t", 5, job(4)).status, Admit::kAdmitted);
  while (queue.try_run_one()) {
  }
  // Priority desc, then arrival seq asc within a priority.
  EXPECT_EQ(ran, (std::vector<int>{2, 4, 1, 3}));
}

TEST(ServeQueue, CapacityAndQuotaRejectTyped) {
  QueueConfig config;
  config.capacity = 2;
  config.tenant_quota = 1;
  JobQueue queue(config);
  EXPECT_EQ(queue.submit("a", 0, [] {}).status, Admit::kAdmitted);
  EXPECT_EQ(queue.submit("a", 0, [] {}).status, Admit::kTenantQuota);
  EXPECT_EQ(queue.submit("b", 0, [] {}).status, Admit::kAdmitted);
  EXPECT_EQ(queue.submit("c", 0, [] {}).status, Admit::kQueueFull);
  EXPECT_EQ(queue.queued(), 2u);
  EXPECT_EQ(queue.tenant_load("a"), 1u);
}

TEST(ServeQueue, QuotaReleasesWhenWorkFinishes) {
  QueueConfig config;
  config.tenant_quota = 1;
  JobQueue queue(config);
  ASSERT_EQ(queue.submit("a", 0, [] {}).status, Admit::kAdmitted);
  ASSERT_TRUE(queue.try_run_one());
  EXPECT_EQ(queue.tenant_load("a"), 0u);
  EXPECT_EQ(queue.submit("a", 0, [] {}).status, Admit::kAdmitted);
}

TEST(ServeQueue, DrainRefusesNewWorkButFinishesAdmitted) {
  JobQueue queue(QueueConfig{});
  std::atomic<int> ran{0};
  ASSERT_EQ(queue.submit("t", 0, [&ran] { ++ran; }).status, Admit::kAdmitted);
  queue.begin_drain();
  EXPECT_EQ(queue.submit("t", 0, [] {}).status, Admit::kDraining);
  queue.start_workers(2);
  queue.wait_idle();
  EXPECT_EQ(ran.load(), 1);
  queue.stop();
  EXPECT_EQ(queue.submit("t", 0, [] {}).status, Admit::kStopped);
}

TEST(ServeQueue, WorkersDrainABacklogExactlyOnce) {
  JobQueue queue(QueueConfig{});
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(queue.submit("t", i % 3, [&ran] { ++ran; }).status,
              Admit::kAdmitted);
  }
  queue.start_workers(4);
  queue.wait_idle();
  EXPECT_EQ(ran.load(), 64);
  queue.stop();
}

// stop() must be safe to call concurrently and repeatedly (Server::stop
// then ~JobQueue is the everyday sequence): only one caller joins any
// given worker thread.
TEST(ServeQueue, ConcurrentAndRepeatedStopIsSafe) {
  JobQueue queue(QueueConfig{});
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(queue.submit("t", 0, [&ran] { ++ran; }).status,
              Admit::kAdmitted);
  }
  queue.start_workers(2);
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&queue] { queue.stop(); });
  }
  for (std::thread& t : stoppers) t.join();
  queue.stop();  // sequential re-entry (the destructor will be one more)
  EXPECT_EQ(queue.submit("t", 0, [] {}).status, Admit::kStopped);
  EXPECT_LE(ran.load(), 8);
}

TEST(ServeJson, ParsesAndNavigatesObjects) {
  std::string error;
  const auto v = json::parse(
      "{\"a\": 1, \"b\": [true, null, \"x\\u0041\"], \"c\": {\"d\": 2.5}}",
      &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->find("a")->int_or(0), 1);
  EXPECT_TRUE(v->find("a")->integral);
  EXPECT_EQ(v->find("b")->items.size(), 3u);
  EXPECT_EQ(v->find("b")->items[2].string, "xA");
  EXPECT_DOUBLE_EQ(v->find("c")->find("d")->num_or(0), 2.5);
}

TEST(ServeJson, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\q\"", "{\"a\":1}x",
        "nan", "[1, 2"}) {
    std::string error;
    EXPECT_FALSE(json::parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ServeJson, RejectsPathologicalNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  std::string error;
  EXPECT_FALSE(json::parse(deep, &error).has_value());
}

TEST(ServeJob, RequestRoundTripsThroughJson) {
  JobRequest req = small_cycle_job();
  req.tenant = "team-x";
  req.priority = 7;
  req.faults = "crash=1-1000";
  req.cells = "333";
  req.supervise = true;
  std::string error;
  const auto v = json::parse(req.to_json(), &error);
  ASSERT_TRUE(v.has_value()) << error;
  const auto back = JobRequest::from_json(*v, error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->to_json(), req.to_json());
}

TEST(ServeJob, ResultRoundTripsThroughJson) {
  const JobRequest req = small_functional_job();
  const JobResult result = execute_job(17, req);
  std::string error;
  const auto v = json::parse(result.to_json(), &error);
  ASSERT_TRUE(v.has_value()) << error;
  const auto back = JobResult::from_json(*v, error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->to_json(true), result.to_json(true));
  EXPECT_EQ(back->job_id, 17u);
  EXPECT_EQ(back->outcome, JobOutcome::kOk);
}

TEST(ServeJob, StateHexCodecIsExact) {
  const JobRequest req = small_functional_job();
  const md::SystemState state = make_replica_state(req, 1);
  const std::string hex = encode_state_hex(state);
  const auto back = decode_state_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(encode_state_hex(*back), hex);
  EXPECT_EQ(state_crc32(*back), state_crc32(state));
  // Damaged hex never decodes.
  EXPECT_FALSE(decode_state_hex(hex.substr(1)).has_value());
  EXPECT_FALSE(decode_state_hex(hex + "00").has_value());
  EXPECT_FALSE(decode_state_hex("zz").has_value());
}

TEST(ServeJob, ValidateCatchesBadSpecs) {
  JobRequest req = small_functional_job();
  req.engine = "warp-drive";
  EXPECT_NE(req.validate().find("unknown engine"), std::string::npos);
  req = small_functional_job();
  req.space = "222";
  EXPECT_NE(req.validate().find("space"), std::string::npos);
  req = small_functional_job();
  req.faults = "crash=1-1000";  // faults demand the cycle engine
  EXPECT_FALSE(req.validate().empty());
  req = small_functional_job();
  req.tenant = "";
  EXPECT_FALSE(req.validate().empty());
}

// The admission resource caps: a hostile (or fat-fingered) submit cannot
// commission an allocation that would OOM the shared daemon — each budget
// overrun is a typed bad-request at validate() time.
TEST(ServeJob, ValidateCapsResourceBudgets) {
  JobRequest req = small_functional_job();
  req.return_state = false;
  req.space = "2000x3x3";
  EXPECT_NE(req.validate().find("per axis"), std::string::npos);

  req.space = "1024x1024x3";  // 3.1M cells > kMaxSpaceCells
  EXPECT_NE(req.validate().find("cells exceeds"), std::string::npos);

  req.space = "512x512x4";  // exactly kMaxSpaceCells: fine on its own
  req.per_cell = 8;         // ...but 2^23 particles per replica is not
  EXPECT_NE(req.validate().find("per replica"), std::string::npos);

  req = small_functional_job();
  req.return_state = false;
  req.per_cell = 512;    // 13824 particles per 333 replica
  req.replicas = 65536;  // ~906M particles total
  EXPECT_NE(req.validate().find("space*per_cell*replicas"),
            std::string::npos);

  req = small_functional_job();  // 108 particles per replica
  req.replicas = 65536;          // ~7M total: under the job cap...
  ASSERT_TRUE(req.return_state);  // ...but far over one result frame
  EXPECT_NE(req.validate().find("return_state"), std::string::npos);
  req.return_state = false;
  EXPECT_EQ(req.validate(), "");

  // The shipped workloads stay comfortably inside every budget.
  EXPECT_EQ(small_functional_job().validate(), "");
  EXPECT_EQ(small_cycle_job().validate(), "");
}

TEST(ServeJob, OutcomeTaxonomyMatchesExitCodes) {
  EXPECT_EQ(job_outcome_exit_code(JobOutcome::kOk), 0);
  EXPECT_EQ(job_outcome_exit_code(JobOutcome::kIncomplete), 1);
  EXPECT_EQ(job_outcome_exit_code(JobOutcome::kDegradedLink), 2);
  EXPECT_EQ(job_outcome_exit_code(JobOutcome::kNodeFailure), 3);
  EXPECT_EQ(job_outcome_exit_code(JobOutcome::kDegraded), 4);
  for (const JobOutcome o :
       {JobOutcome::kOk, JobOutcome::kDegraded, JobOutcome::kDegradedLink,
        JobOutcome::kNodeFailure, JobOutcome::kIncomplete}) {
    EXPECT_EQ(job_outcome_from_name(job_outcome_name(o)), o);
  }
  EXPECT_FALSE(job_outcome_from_name("sideways").has_value());
}
