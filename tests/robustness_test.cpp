// Robustness and property suites across the stack: degenerate workloads
// (empty cells, single particles, frozen systems), invariance of the
// physics to timing parameters (latency, buffer depths, sync mode must not
// change results), and randomized ring-conservation fuzzing.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "fasda/core/simulation.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/md/energy.hpp"
#include "fasda/md/functional_engine.hpp"
#include "fasda/ring/ring.hpp"
#include "fasda/util/rng.hpp"

namespace fasda {
namespace {

// ---------------------------------------------------------------- workloads

md::SystemState sparse_state() {
  // Only two occupied cells in a 3x3x3 space; most cells empty.
  md::SystemState s;
  s.cell_dims = {3, 3, 3};
  s.cell_size = 8.5;
  for (int i = 0; i < 5; ++i) {
    s.positions.push_back({4.0 + 0.8 * i, 4.0, 4.0});
    s.velocities.push_back({0.0, 0.0, 0.0});
    s.elements.push_back(0);
  }
  s.positions.push_back({13.0, 13.0, 13.0});  // lone particle, cell (1,1,1)
  s.velocities.push_back({0.01, 0.0, 0.0});
  s.elements.push_back(0);
  return s;
}

TEST(Robustness, EmptyCellsHandledByAllEngines) {
  const auto ff = md::ForceField::sodium();
  const auto state = sparse_state();

  md::FunctionalConfig fc;
  fc.cutoff = 8.5;
  fc.dt = 2.0;
  md::FunctionalEngine functional(state, ff, fc);
  functional.step(5);
  EXPECT_EQ(functional.state().size(), state.size());

  core::Simulation sim(state, ff, core::ClusterConfig{});
  sim.run(5);
  EXPECT_EQ(sim.state().size(), state.size());
}

TEST(Robustness, LoneParticleFeelsNoForce) {
  const auto ff = md::ForceField::sodium();
  const auto state = sparse_state();
  core::Simulation sim(state, ff, core::ClusterConfig{});
  sim.run(1);
  const auto forces = sim.forces_by_particle();
  EXPECT_EQ(forces.back(), (geom::Vec3f{}));
  // And its drift is pure constant-velocity motion.
  const auto out = sim.state();
  EXPECT_NEAR(out.positions.back().x, 13.0 + 0.01 * 2.0, 1e-5);
}

TEST(Robustness, CompletelyEmptySimulationTerminates) {
  md::SystemState s;
  s.cell_dims = {3, 3, 3};
  s.cell_size = 8.5;
  core::Simulation sim(s, md::ForceField::sodium(), core::ClusterConfig{});
  sim.run(3);
  EXPECT_EQ(sim.state().size(), 0u);
  EXPECT_GT(sim.last_run_cycles(), 0u);
}

TEST(Robustness, FrozenLatticeStaysPut) {
  // Particles on an exact lattice with zero velocity and zero jitter: net
  // forces are symmetric but nonzero only at float rounding level, so one
  // step must move nothing measurably.
  md::DatasetParams p;
  p.particles_per_cell = 8;
  p.jitter = 0.0;
  p.temperature = 0.0;
  const auto ff = md::ForceField::sodium();
  const auto state = md::generate_dataset({3, 3, 3}, 8.5, ff, p);
  core::Simulation sim(state, ff, core::ClusterConfig{});
  sim.run(3);
  const auto out = sim.state();
  const auto grid = state.grid();
  for (std::size_t i = 0; i < state.size(); ++i) {
    EXPECT_LT(grid.min_image(out.positions[i], state.positions[i]).norm(), 1e-4);
  }
}

// ----------------------------------------------- timing-parameter invariance

md::SystemState standard_state() {
  md::DatasetParams p;
  p.particles_per_cell = 12;
  p.seed = 31;
  p.temperature = 200.0;
  return md::generate_dataset({4, 4, 4}, 8.5, md::ForceField::sodium(), p);
}

std::vector<geom::Vec3f> run_forces(core::ClusterConfig config) {
  config.node_dims = {2, 2, 2};
  config.cells_per_node = {2, 2, 2};
  config.channel.link_latency = std::max<sim::Cycle>(config.channel.link_latency, 5);
  core::Simulation sim(standard_state(), md::ForceField::sodium(), config);
  sim.run(1);
  return sim.forces_by_particle();
}

double worst_diff(const std::vector<geom::Vec3f>& a,
                  const std::vector<geom::Vec3f>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, (a[i].cast<double>() - b[i].cast<double>()).norm());
  }
  return worst;
}

TEST(TimingInvariance, PipelineLatencyDoesNotChangeForces) {
  // Timing parameters reshuffle which FC write lands first (float order),
  // but the accumulated physics must agree to rounding noise.
  core::ClusterConfig base;
  const auto a = run_forces(base);
  core::ClusterConfig deep;
  deep.pipeline_latency = 97;
  core::ClusterConfig shallow;
  shallow.pipeline_latency = 1;
  EXPECT_LT(worst_diff(a, run_forces(deep)), 1e-6);
  EXPECT_LT(worst_diff(a, run_forces(shallow)), 1e-6);
}

TEST(TimingInvariance, LinkLatencyAndCooldownDoNotChangeForces) {
  core::ClusterConfig base;
  const auto a = run_forces(base);
  core::ClusterConfig slow;
  slow.channel.link_latency = 977;
  slow.channel.cooldown = 17;
  EXPECT_LT(worst_diff(a, run_forces(slow)), 1e-6);
}

TEST(TimingInvariance, FilterCountChangesTimingNotPhysics) {
  core::ClusterConfig base;
  const auto a = run_forces(base);
  for (int filters : {1, 3, 9}) {
    core::ClusterConfig v;
    v.filters_per_pipeline = filters;
    const auto b = run_forces(v);
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      worst = std::max(
          worst, (a[i].cast<double>() - b[i].cast<double>()).norm());
    }
    // Summation order shifts with the filter schedule; physics must not.
    EXPECT_LT(worst, 1e-6) << filters << " filters";
  }
}

// ----------------------------------------------------- lossy-fabric fuzzing

/// Randomized FaultPlans at bounded rates over a small 8-node box: whatever
/// the wire does (within recoverable limits — no dead links), the physics
/// must not notice. Particle count is conserved through lossy migrations
/// and the potential energy stays within parity tolerance of the
/// functional engine's identical numerics.
class FaultFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultFuzz, RandomFaultPlansLeavePhysicsUntouched) {
  util::Xoshiro256 rng(GetParam());
  net::FaultPlan plan;
  plan.seed = rng();
  plan.all.drop = 0.10 * rng.uniform();
  plan.all.dup = 0.05 * rng.uniform();
  plan.all.reorder = 0.05 * rng.uniform();
  plan.all.corrupt = 0.05 * rng.uniform();

  md::DatasetParams p;
  p.particles_per_cell = 8;
  p.seed = GetParam();
  p.temperature = 250.0;
  const auto ff = md::ForceField::sodium();
  const auto state = md::generate_dataset({4, 4, 4}, 8.5, ff, p);

  core::ClusterConfig config;
  config.node_dims = {2, 2, 2};
  config.cells_per_node = {2, 2, 2};
  config.faults = plan;
  config.num_worker_threads = 2;
  core::Simulation sim(state, ff, config);
  const int steps = 2;
  sim.run(steps);

  // No particle lost or duplicated through lossy migration packets.
  EXPECT_EQ(sim.state().size(), state.size());

  md::FunctionalConfig fc;
  fc.cutoff = 8.5;
  fc.dt = 2.0;
  md::FunctionalEngine functional(state, ff, fc);
  functional.step(steps);
  const double want = functional.potential_energy();
  EXPECT_LT(std::abs(sim.potential_energy() - want) / std::abs(want), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz, ::testing::Values(1u, 7u, 42u));

// ------------------------------------------------- elision-oracle fuzzing

/// Property behind idle-cycle elision (DESIGN.md §13): the wake oracle may
/// over-predict (wake a component that then does nothing — wasted work,
/// counted as idle_wakes) but must NEVER under-predict (state changing
/// inside a window the oracle declared quiet — counted as mispredicts).
/// kValidate runs the naive loop and audits the oracle on every cycle, so
/// randomized geometries, link latencies and fault seeds search for a
/// contract violation without any risk of masking one.
class ElisionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ElisionFuzz, OracleNeverUnderPredicts) {
  util::Xoshiro256 rng(GetParam());

  core::ClusterConfig config;
  const geom::IVec3 node_shapes[] = {{1, 1, 2}, {1, 2, 2}, {2, 2, 2}};
  config.node_dims = node_shapes[rng.below(3)];
  // The global grid needs >= 3 cells per dimension; widen singleton axes.
  config.cells_per_node = {config.node_dims.x == 1 ? 3 : 2,
                           config.node_dims.y == 1 ? 3 : 2,
                           config.node_dims.z == 1 ? 3 : 2};
  config.channel.link_latency = 1 + static_cast<int>(rng.below(400));
  config.num_worker_threads = 1 + static_cast<int>(rng.below(4));
  config.tick_mode = sim::TickMode::kValidate;
  if (rng.below(2) == 0) {
    net::FaultPlan plan;
    plan.seed = rng();
    plan.all.drop = 0.10 * rng.uniform();
    plan.all.dup = 0.05 * rng.uniform();
    plan.all.reorder = 0.05 * rng.uniform();
    plan.all.corrupt = 0.05 * rng.uniform();
    config.faults = plan;
  }

  md::DatasetParams p;
  p.particles_per_cell = 4 + static_cast<int>(rng.below(5));
  p.seed = GetParam();
  p.temperature = 250.0;
  const auto ff = md::ForceField::sodium();
  const geom::IVec3 dims = {config.node_dims.x * config.cells_per_node.x,
                            config.node_dims.y * config.cells_per_node.y,
                            config.node_dims.z * config.cells_per_node.z};
  const auto state = md::generate_dataset(dims, 8.5, ff, p);

  core::Simulation sim(state, ff, config);
  sim.run(2);

  const sim::ElisionStats& stats = sim.elision_stats();
  // "State changed while skipped": a single occurrence means elision would
  // have diverged from the naive loop on this workload.
  EXPECT_EQ(stats.mispredicts, 0u)
      << "oracle under-predicted a wake (nodes=" << config.node_dims.x << "x"
      << config.node_dims.y << "x" << config.node_dims.z
      << ", link_latency=" << config.channel.link_latency << ")";
  EXPECT_EQ(stats.elided_cycles, 0u) << "validate mode must not skip";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElisionFuzz,
                         ::testing::Values(3u, 11u, 23u, 57u, 91u));

// Deterministic companion to the fuzz property: long links make whole
// windows provably dead, so the audited naive loop must both observe idle
// wakes ("woke with no state change" — the waste elision removes) and
// still finish with a zero mispredict count.
TEST(ElisionFuzz, LongLinksProduceIdleWakesButNoMispredicts) {
  core::ClusterConfig config;
  config.node_dims = {2, 2, 2};
  config.cells_per_node = {2, 2, 2};
  config.channel.link_latency = 800;
  config.tick_mode = sim::TickMode::kValidate;

  md::DatasetParams p;
  p.particles_per_cell = 8;
  p.seed = 21;
  p.temperature = 200.0;
  const auto ff = md::ForceField::sodium();
  const auto state = md::generate_dataset({4, 4, 4}, 8.5, ff, p);

  core::Simulation sim(state, ff, config);
  sim.run(1);

  const sim::ElisionStats& stats = sim.elision_stats();
  EXPECT_EQ(stats.mispredicts, 0u);
  EXPECT_GT(stats.idle_wakes, 0u)
      << "800-cycle links should leave globally dead cycles to observe";
}

// --------------------------------------------------------- ring conservation

struct FuzzTok {
  int id = 0;
  int dest = -1;
  int multicast = 1;
};

class FuzzStation : public ring::Station<FuzzTok> {
 public:
  FuzzStation(int id, util::Xoshiro256* rng) : id_(id), rng_(rng), inject(64) {}

  Action classify(const FuzzTok& t) const override {
    if (t.dest != id_) return Action::kPass;
    return t.multicast <= 1 ? Action::kDeliverAndDrop : Action::kDeliver;
  }

  bool try_deliver(FuzzTok& t) override {
    if (rng_->below(4) == 0) return false;  // 25% transient refusal
    ++delivered[t.id];
    t.multicast--;
    return true;
  }

  sim::Fifo<FuzzTok>* inject_source() override { return &inject; }

  int id_;
  util::Xoshiro256* rng_;
  sim::Fifo<FuzzTok> inject;
  std::map<int, int> delivered;
};

class RingFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingFuzz, NoTokenLostOrDuplicated) {
  util::Xoshiro256 rng(GetParam());
  const int n = 3 + static_cast<int>(rng.below(8));
  std::vector<std::unique_ptr<FuzzStation>> stations;
  std::vector<ring::Station<FuzzTok>*> ptrs;
  for (int i = 0; i < n; ++i) {
    stations.push_back(std::make_unique<FuzzStation>(i, &rng));
    ptrs.push_back(stations.back().get());
  }
  ring::Ring<FuzzTok> r("fuzz", ptrs);
  sim::Scheduler scheduler;
  scheduler.add(&r);
  for (auto& s : stations) scheduler.add_clocked(&s->inject);

  std::map<int, int> expected;  // token id -> expected delivery count
  int next_id = 0;
  for (int round = 0; round < 50; ++round) {
    const int src = static_cast<int>(rng.below(n));
    FuzzTok t;
    t.id = next_id++;
    t.dest = static_cast<int>(rng.below(n));
    t.multicast = 1 + static_cast<int>(rng.below(3));
    if (t.dest == src) t.dest = (t.dest + 1) % n;
    if (stations[src]->inject.push(t)) expected[t.id] = t.multicast;
    for (int c = 0; c < 3; ++c) scheduler.run_cycle();
  }
  for (int c = 0; c < 3000 && r.occupancy() > 0; ++c) scheduler.run_cycle();
  EXPECT_EQ(r.occupancy(), 0u);

  std::map<int, int> delivered;
  for (auto& s : stations) {
    for (const auto& [id, count] : s->delivered) delivered[id] += count;
  }
  EXPECT_EQ(delivered, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace fasda
