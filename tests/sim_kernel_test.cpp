#include <gtest/gtest.h>

#include "fasda/sim/kernel.hpp"

namespace fasda::sim {
namespace {

TEST(Fifo, PushesBecomeVisibleAfterCommit) {
  Fifo<int> fifo(4);
  EXPECT_TRUE(fifo.push(1));
  EXPECT_TRUE(fifo.empty()) << "staged pushes must be invisible this cycle";
  EXPECT_EQ(fifo.total_occupancy(), 1u);
  fifo.commit();
  ASSERT_FALSE(fifo.empty());
  EXPECT_EQ(fifo.front(), 1);
  EXPECT_EQ(fifo.pop(), 1);
  EXPECT_TRUE(fifo.empty());
}

TEST(Fifo, CapacityCountsStagedItems) {
  Fifo<int> fifo(2);
  EXPECT_TRUE(fifo.push(1));
  EXPECT_TRUE(fifo.push(2));
  EXPECT_FALSE(fifo.can_push());
  EXPECT_FALSE(fifo.push(3));
  fifo.commit();
  EXPECT_FALSE(fifo.can_push());
  fifo.pop();
  EXPECT_TRUE(fifo.can_push());
}

TEST(Fifo, PopAndFrontOnEmptyCommittedQueueThrow) {
  Fifo<int> fifo(4);
  EXPECT_THROW(fifo.pop(), std::logic_error);
  EXPECT_THROW(fifo.front(), std::logic_error);
  // A staged-but-uncommitted item is still invisible to pop()/front().
  EXPECT_TRUE(fifo.push(1));
  EXPECT_THROW(fifo.pop(), std::logic_error);
  EXPECT_THROW(fifo.front(), std::logic_error);
  fifo.commit();
  EXPECT_EQ(fifo.front(), 1);
  EXPECT_EQ(fifo.pop(), 1);
  EXPECT_THROW(fifo.pop(), std::logic_error) << "drained: empty again";
}

TEST(Fifo, PreservesOrderAcrossCommits) {
  Fifo<int> fifo(8);
  fifo.push(1);
  fifo.push(2);
  fifo.commit();
  fifo.push(3);
  fifo.commit();
  EXPECT_EQ(fifo.pop(), 1);
  EXPECT_EQ(fifo.pop(), 2);
  EXPECT_EQ(fifo.pop(), 3);
}

TEST(Reg, WriteVisibleNextCycleOnly) {
  Reg<int> reg;
  EXPECT_TRUE(reg.can_write());
  reg.write(7);
  EXPECT_FALSE(reg.valid());
  EXPECT_FALSE(reg.can_write());
  reg.commit();
  EXPECT_TRUE(reg.valid());
  EXPECT_EQ(reg.value(), 7);
  EXPECT_FALSE(reg.can_write()) << "full slot: clear first";
  reg.clear();
  reg.commit();
  EXPECT_TRUE(reg.can_write());
}

TEST(Reg, DoubleWriteThrows) {
  Reg<int> reg;
  reg.write(1);
  EXPECT_THROW(reg.write(2), std::logic_error);
}

TEST(UtilCounter, Ratios) {
  UtilCounter c;
  c.record(1, 2, true);
  c.record(1, 2, false);
  EXPECT_DOUBLE_EQ(c.hardware_utilization(), 0.5);
  EXPECT_DOUBLE_EQ(c.time_utilization(2), 0.5);
  EXPECT_DOUBLE_EQ(c.time_utilization(2, 2), 0.25);
  UtilCounter d;
  d.record(2, 2, true);
  c.merge(d);
  EXPECT_DOUBLE_EQ(c.hardware_utilization(), 4.0 / 6.0);
}

TEST(UtilCounter, EmptyIsZero) {
  const UtilCounter c;
  EXPECT_DOUBLE_EQ(c.hardware_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(c.time_utilization(0), 0.0);
}

class Producer : public Component {
 public:
  Producer(Fifo<int>* out) : Component("producer"), out_(out) {}
  void tick(Cycle now) override { out_->push(static_cast<int>(now)); }

 private:
  Fifo<int>* out_;
};

class Consumer : public Component {
 public:
  Consumer(Fifo<int>* in) : Component("consumer"), in_(in) {}
  void tick(Cycle) override {
    if (!in_->empty()) values.push_back(in_->pop());
  }
  std::vector<int> values;

 private:
  Fifo<int>* in_;
};

TEST(Scheduler, TickOrderInvariance) {
  // Producer->FIFO->Consumer must behave identically whichever is ticked
  // first: that's the whole point of two-phase state.
  auto run = [](bool producer_first) {
    Fifo<int> fifo(100);
    Producer p(&fifo);
    Consumer c(&fifo);
    Scheduler s;
    if (producer_first) {
      s.add(&p);
      s.add(&c);
    } else {
      s.add(&c);
      s.add(&p);
    }
    s.add_clocked(&fifo);
    for (int i = 0; i < 10; ++i) s.run_cycle();
    return c.values;
  };
  EXPECT_EQ(run(true), run(false));
  const auto v = run(true);
  ASSERT_GE(v.size(), 2u);
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[1], 1) << "one-cycle FIFO latency";
}

TEST(Scheduler, RunUntilStopsAndThrowsOnBudget) {
  Scheduler s;
  int count = 0;
  class Counter : public Component {
   public:
    explicit Counter(int* c) : Component("counter"), c_(c) {}
    void tick(Cycle) override { ++*c_; }

   private:
    int* c_;
  } counter(&count);
  s.add(&counter);
  s.run_until([&] { return count >= 5; }, 100);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.cycle(), 5u);
  EXPECT_THROW(s.run_until([] { return false; }, 10), std::runtime_error);
}

}  // namespace
}  // namespace fasda::sim
