// Cross-module property sweeps: grid-shape parameterization of the
// neighbour partition, packet in-order delivery, probe machinery used by
// the equivalence suites, and resource/performance model monotonicity.

#include <gtest/gtest.h>

#include <set>

#include "fasda/core/simulation.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/model/perf_models.hpp"
#include "fasda/model/resource_model.hpp"
#include "fasda/net/network.hpp"

namespace fasda {
namespace {

// ------------------------------------------------------- grid-shape sweep

class GridShapes : public ::testing::TestWithParam<geom::IVec3> {};

TEST_P(GridShapes, NeighborPartitionHolds) {
  const geom::CellGrid grid(GetParam(), 1.0);
  for (int id = 0; id < grid.num_cells(); ++id) {
    const geom::IVec3 a = grid.coords(id);
    int forward = 0;
    std::set<geom::CellId> distinct;
    for (const geom::IVec3& d : geom::full_shell_offsets()) {
      const geom::IVec3 b = grid.wrap(a + d);
      distinct.insert(grid.cid(b));
      forward += grid.is_forward_neighbor(a, b);
    }
    EXPECT_EQ(forward, 13);
    EXPECT_EQ(distinct.size(), 26u) << "all neighbours distinct when dims>=3";
  }
}

TEST_P(GridShapes, CidIsABijection) {
  const geom::CellGrid grid(GetParam(), 2.5);
  std::set<geom::CellId> seen;
  for (int x = 0; x < grid.dims().x; ++x) {
    for (int y = 0; y < grid.dims().y; ++y) {
      for (int z = 0; z < grid.dims().z; ++z) {
        const geom::CellId id = grid.cid({x, y, z});
        EXPECT_TRUE(seen.insert(id).second);
        EXPECT_GE(id, 0);
        EXPECT_LT(id, grid.num_cells());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GridShapes,
                         ::testing::Values(geom::IVec3{3, 3, 3},
                                           geom::IVec3{4, 3, 5},
                                           geom::IVec3{6, 3, 3},
                                           geom::IVec3{5, 5, 5},
                                           geom::IVec3{3, 7, 4}));

// -------------------------------------------------- cluster-map partitions

class ClusterShapes
    : public ::testing::TestWithParam<std::pair<geom::IVec3, geom::IVec3>> {};

TEST_P(ClusterShapes, EveryCellHasExactlyOneOwner) {
  const auto [nodes, cpn] = GetParam();
  const idmap::ClusterMap map(nodes, cpn);
  const auto g = map.global_dims();
  for (int x = 0; x < g.x; ++x) {
    for (int y = 0; y < g.y; ++y) {
      for (int z = 0; z < g.z; ++z) {
        const geom::IVec3 cell{x, y, z};
        const geom::IVec3 node = map.node_of_cell(cell);
        EXPECT_EQ(map.global_cell(node, map.local_cell(cell)), cell);
        const idmap::NodeId id = map.node_id(node);
        EXPECT_GE(id, 0);
        EXPECT_LT(id, map.num_nodes());
      }
    }
  }
}

TEST_P(ClusterShapes, RemoteDestinationsAreActualNeighbors) {
  const auto [nodes, cpn] = GetParam();
  const idmap::ClusterMap map(nodes, cpn);
  const auto g = map.global_dims();
  for (int x = 0; x < g.x; ++x) {
    for (int y = 0; y < g.y; ++y) {
      for (int z = 0; z < g.z; ++z) {
        const geom::IVec3 cell{x, y, z};
        const idmap::NodeId own = map.node_id(map.node_of_cell(cell));
        const auto neighbors = map.neighbor_nodes(own);
        for (const idmap::NodeId dst : map.remote_destinations(cell)) {
          EXPECT_NE(std::find(neighbors.begin(), neighbors.end(), dst),
                    neighbors.end())
              << "every P2R destination is a topological neighbour";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClusterShapes,
    ::testing::Values(std::pair{geom::IVec3{2, 2, 2}, geom::IVec3{2, 2, 2}},
                      std::pair{geom::IVec3{2, 1, 1}, geom::IVec3{3, 3, 3}},
                      std::pair{geom::IVec3{4, 1, 1}, geom::IVec3{3, 3, 3}},
                      std::pair{geom::IVec3{2, 2, 1}, geom::IVec3{3, 3, 3}},
                      std::pair{geom::IVec3{3, 3, 3}, geom::IVec3{2, 2, 2}}));

// ----------------------------------------------------- network in-ordering

TEST(EndpointOrdering, RecordsArriveInSendOrderPerSource) {
  net::ChannelConfig config;
  config.link_latency = 7;
  config.cooldown = 1;
  net::Fabric<net::PosRecord> fabric(config);
  net::Endpoint<net::PosRecord> a(0, config), b(1, config), c(2, config);
  fabric.attach(&a);
  fabric.attach(&b);
  fabric.attach(&c);

  sim::Cycle now = 0;
  int next_a = 0, next_b = 1000;
  auto pump = [&](int cycles) {
    for (int i = 0; i < cycles; ++i, ++now) {
      auto send = [&](const net::Packet<net::PosRecord>& p) {
        fabric.send(p, now);
      };
      a.tick_egress(now, send);
      b.tick_egress(now, send);
      fabric.commit();
    }
  };
  for (int round = 0; round < 30; ++round) {
    net::PosRecord ra;
    ra.slot = static_cast<std::uint16_t>(next_a++);
    a.enqueue(2, ra);
    net::PosRecord rb;
    rb.slot = static_cast<std::uint16_t>(next_b++);
    b.enqueue(2, rb);
    pump(2);
  }
  a.flush_last({2});
  b.flush_last({2});
  pump(40);

  int last_a = -1, last_b = 999;
  for (sim::Cycle t = 0; t < 300; ++t) {
    if (auto r = c.poll_record(t)) {
      if (r->slot < 1000) {
        EXPECT_GT(static_cast<int>(r->slot), last_a) << "in order per source";
        last_a = r->slot;
      } else {
        EXPECT_GT(static_cast<int>(r->slot), last_b);
        last_b = r->slot;
      }
    }
  }
  EXPECT_EQ(last_a, 29);
  EXPECT_EQ(last_b, 1029);
}

// ----------------------------------------------------------- probe plumbing

TEST(Probes, PairAndFcProbesObserveAForcePhase) {
  md::DatasetParams p;
  p.particles_per_cell = 8;
  const auto state =
      md::generate_dataset({3, 3, 3}, 8.5, md::ForceField::sodium(), p);
  std::size_t pair_events = 0, fc_events = 0;
  pe::PairProbe::hook = [&](std::uint32_t, const pe::Reference&,
                            const geom::Vec3f&) { ++pair_events; };
  cbb::FcProbe::hook = [&](const geom::IVec3&, std::uint16_t,
                           const geom::Vec3f&, int) { ++fc_events; };
  core::Simulation sim(state, md::ForceField::sodium(), core::ClusterConfig{});
  sim.run(1);
  pe::PairProbe::hook = nullptr;
  cbb::FcProbe::hook = nullptr;
  EXPECT_EQ(pair_events, sim.pairs_issued());
  // Every pair deposits a home-side FC write; retirements add more.
  EXPECT_GE(fc_events, pair_events);
}

// ------------------------------------------------------- model monotonicity

TEST(ModelMonotonicity, ResourcesGrowWithEveryKnob) {
  const model::ResourceModel m;
  core::ClusterConfig base;
  base.node_dims = {2, 2, 2};
  base.cells_per_node = {2, 2, 2};
  const auto r0 = m.per_fpga(base);
  auto more_pes = base;
  more_pes.pes_per_spe = 2;
  auto more_spes = base;
  more_spes.spes = 2;
  auto more_filters = base;
  more_filters.filters_per_pipeline = 9;
  auto more_cells = base;
  more_cells.cells_per_node = {3, 3, 3};
  for (const auto* cfg : {&more_pes, &more_spes, &more_filters, &more_cells}) {
    const auto r = m.per_fpga(*cfg);
    EXPECT_GT(r.lut, r0.lut);
    EXPECT_GE(r.dsp, r0.dsp);
  }
}

TEST(ModelMonotonicity, GpuRateIncreasesWithDevicesOnlyWhenThroughputBound) {
  const model::GpuModel g;
  // Tiny system: latency-bound, more GPUs always lose.
  EXPECT_LT(g.us_per_day(4096, 4, model::GpuKind::kA100),
            g.us_per_day(4096, 1, model::GpuKind::kA100));
  // Huge system: throughput-bound, more GPUs win.
  EXPECT_GT(g.us_per_day(4000000, 4, model::GpuKind::kA100),
            g.us_per_day(4000000, 1, model::GpuKind::kA100));
}

}  // namespace
}  // namespace fasda
