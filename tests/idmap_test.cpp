#include <gtest/gtest.h>

#include <set>

#include "fasda/idmap/cell_id_map.hpp"

namespace fasda::idmap {
namespace {

TEST(ClusterMap, NodeIndexingRoundTrips) {
  const ClusterMap map({2, 2, 2}, {2, 2, 2});
  std::set<NodeId> seen;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int z = 0; z < 2; ++z) {
        const NodeId id = map.node_id({x, y, z});
        EXPECT_EQ(map.node_coords(id), (geom::IVec3{x, y, z}));
        seen.insert(id);
      }
    }
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ClusterMap, CellOwnershipPartition) {
  const ClusterMap map({2, 1, 1}, {3, 3, 3});
  EXPECT_EQ(map.global_dims(), (geom::IVec3{6, 3, 3}));
  EXPECT_EQ(map.node_of_cell({2, 1, 1}), (geom::IVec3{0, 0, 0}));
  EXPECT_EQ(map.node_of_cell({3, 1, 1}), (geom::IVec3{1, 0, 0}));
  EXPECT_EQ(map.local_cell({4, 2, 0}), (geom::IVec3{1, 2, 0}));
  EXPECT_EQ(map.global_cell({1, 0, 0}, {1, 2, 0}), (geom::IVec3{4, 2, 0}));
}

TEST(ClusterMap, GcidToLcidMatchesPaperFig9) {
  // The paper's 2-D example uses 2x1 nodes of 3x3 cells (global 6x3); we
  // embed it in 3-D with a trivial z. Node (1,0): cell GCID (5,2) sent to
  // node (0,0) keeps its coordinates; cell GCID (2,1) of node (0,0) sent to
  // node (1,0) becomes (5,1) through the periodic wrap.
  const ClusterMap map({2, 1, 1}, {3, 3, 3});
  EXPECT_EQ(map.gcid_to_lcid({5, 2, 0}, {0, 0, 0}), (geom::IVec3{5, 2, 0}));
  EXPECT_EQ(map.gcid_to_lcid({2, 1, 0}, {1, 0, 0}), (geom::IVec3{5, 1, 0}));
  // And the destination cell GCID (3,0) appears as (0,0) in its own node.
  EXPECT_EQ(map.gcid_to_lcid({3, 0, 0}, {1, 0, 0}), (geom::IVec3{0, 0, 0}));
}

TEST(ClusterMap, LcidConversionPreservesGeometry) {
  // Homogeneity property (§4.2): for any global cell pair (src, dst), the
  // displacement computed from the converted LCIDs in dst's node frame must
  // equal the true global displacement.
  const ClusterMap map({2, 2, 2}, {2, 2, 2});
  const auto& grid = map.grid();
  for (int s = 0; s < grid.num_cells(); ++s) {
    for (int d = 0; d < grid.num_cells(); ++d) {
      const geom::IVec3 src = grid.coords(s);
      const geom::IVec3 dst = grid.coords(d);
      const geom::IVec3 dest_node = map.node_of_cell(dst);
      const geom::IVec3 src_lcid = map.gcid_to_lcid(src, dest_node);
      const geom::IVec3 dst_lcid = map.gcid_to_lcid(dst, dest_node);
      EXPECT_EQ(map.min_image(src_lcid, dst_lcid), map.min_image(src, dst));
    }
  }
}

TEST(ClusterMap, RcidIsCenteredAtTwo) {
  const ClusterMap map({2, 2, 2}, {2, 2, 2});
  // A particle evaluated in its own cell gets RCID (2,2,2).
  EXPECT_EQ(map.lcid_to_rcid({1, 1, 1}, {1, 1, 1}), (geom::IVec3{2, 2, 2}));
  // One cell behind on x (source at x-1): RCID x-component 1.
  EXPECT_EQ(map.lcid_to_rcid({0, 1, 1}, {1, 1, 1}), (geom::IVec3{1, 2, 2}));
  // Periodic: source at the far end is one cell "ahead".
  EXPECT_EQ(map.lcid_to_rcid({2, 1, 1}, {1, 1, 1}), (geom::IVec3{3, 2, 2}));
}

TEST(ClusterMap, RcidAlwaysInRangeForNeighbours) {
  const ClusterMap map({2, 2, 2}, {3, 3, 3});
  const auto& grid = map.grid();
  for (int c = 0; c < grid.num_cells(); ++c) {
    const geom::IVec3 dst = grid.coords(c);
    for (const geom::IVec3& off : geom::full_shell_offsets()) {
      const geom::IVec3 src = grid.wrap(dst + off);
      const geom::IVec3 dest_node = map.node_of_cell(dst);
      const geom::IVec3 rcid = map.lcid_to_rcid(
          map.gcid_to_lcid(src, dest_node), map.local_cell(dst));
      for (const int v : {rcid.x, rcid.y, rcid.z}) {
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 3);
      }
    }
  }
}

TEST(ClusterMap, AcceptanceMatchesForwardNeighbours) {
  // The PRN acceptance test on converted LCIDs must accept exactly the 13
  // forward neighbours of the source cell, regardless of which node the
  // source came from.
  const ClusterMap map({2, 2, 2}, {2, 2, 2});
  const auto& grid = map.grid();
  for (int s = 0; s < grid.num_cells(); ++s) {
    const geom::IVec3 src = grid.coords(s);
    int accepted = 0;
    for (int n = 0; n < map.num_nodes(); ++n) {
      const geom::IVec3 node = map.node_coords(n);
      const geom::IVec3 lcid = map.gcid_to_lcid(src, node);
      for (int lx = 0; lx < 2; ++lx) {
        for (int ly = 0; ly < 2; ++ly) {
          for (int lz = 0; lz < 2; ++lz) {
            const geom::IVec3 lcell{lx, ly, lz};
            if (map.accepts_position(lcid, lcell)) {
              const geom::IVec3 gcell = map.global_cell(node, lcell);
              EXPECT_TRUE(grid.is_forward_neighbor(src, gcell));
              ++accepted;
            }
          }
        }
      }
    }
    EXPECT_EQ(accepted, 13);
  }
}

TEST(ClusterMap, RemoteDestinationsExcludeOwnNode) {
  const ClusterMap map({2, 2, 2}, {2, 2, 2});
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 4; ++y) {
      for (int z = 0; z < 4; ++z) {
        const geom::IVec3 gcell{x, y, z};
        const NodeId own = map.node_id(map.node_of_cell(gcell));
        for (NodeId id : map.remote_destinations(gcell)) {
          EXPECT_NE(id, own);
          EXPECT_GE(id, 0);
          EXPECT_LT(id, map.num_nodes());
        }
      }
    }
  }
}

TEST(ClusterMap, CornerCellReachesSevenRemoteNodes) {
  // In a 2x2x2 cluster of 2x2x2 blocks, a cell at a block corner has forward
  // neighbours in all 7 other nodes... only if the forward octant spans
  // them; the forward half-shell from a corner touches exactly the nodes in
  // the +x/+y/+z direction and the mixed faces: verify against brute force.
  const ClusterMap map({2, 2, 2}, {2, 2, 2});
  const geom::IVec3 corner{1, 1, 1};  // forward corner of node 0
  const auto remotes = map.remote_destinations(corner);
  std::set<NodeId> brute;
  const NodeId own = map.node_id(map.node_of_cell(corner));
  for (const geom::IVec3& d : geom::half_shell_offsets()) {
    const geom::IVec3 target = map.grid().wrap(corner + d);
    const NodeId id = map.node_id(map.node_of_cell(target));
    if (id != own) brute.insert(id);
  }
  EXPECT_EQ(std::set<NodeId>(remotes.begin(), remotes.end()), brute);
}

TEST(ClusterMap, NeighborNodesSymmetric) {
  const ClusterMap map({2, 2, 2}, {2, 2, 2});
  for (int n = 0; n < map.num_nodes(); ++n) {
    for (NodeId m : map.neighbor_nodes(n)) {
      const auto back = map.neighbor_nodes(m);
      EXPECT_NE(std::find(back.begin(), back.end(), n), back.end());
    }
  }
}

TEST(ClusterMap, EightNodeTorusHasSevenNeighbors) {
  // Fig. 8's 2x2x2 logical torus: every node neighbours all 7 others.
  const ClusterMap map({2, 2, 2}, {2, 2, 2});
  for (int n = 0; n < map.num_nodes(); ++n) {
    EXPECT_EQ(map.neighbor_nodes(n).size(), 7u);
  }
}

TEST(ClusterMap, SingleNodeHasNoNeighbors) {
  const ClusterMap map({1, 1, 1}, {3, 3, 3});
  EXPECT_TRUE(map.neighbor_nodes(0).empty());
  EXPECT_TRUE(map.remote_destinations({1, 1, 1}).empty());
}

TEST(ClusterMap, RejectsZeroDims) {
  EXPECT_THROW(ClusterMap({0, 1, 1}, {3, 3, 3}), std::invalid_argument);
  EXPECT_THROW(ClusterMap({1, 1, 1}, {3, 0, 3}), std::invalid_argument);
}

}  // namespace
}  // namespace fasda::idmap
