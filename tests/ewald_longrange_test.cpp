// Long-range Ewald reference: the splitting-parameter independence property
// (real + reciprocal + self must not depend on β), two-charge analytic
// checks, and force-gradient consistency.

#include <gtest/gtest.h>

#include <cmath>

#include "fasda/md/dataset.hpp"
#include "fasda/md/energy.hpp"
#include "fasda/md/ewald_longrange.hpp"

namespace fasda::md {
namespace {

SystemState salt_state(int per_cell = 8) {
  DatasetParams p;
  p.particles_per_cell = per_cell;
  p.seed = 23;
  p.temperature = 0.0;
  p.elements = ElementAssignment::kAlternating;
  return generate_dataset({3, 3, 3}, 8.5, ForceField::sodium_chloride(), p);
}

double total_coulomb(const SystemState& state, const ForceField& ff,
                     double beta, int kmax) {
  ForceTerms terms;
  terms.lj = false;
  terms.ewald_real = true;
  terms.ewald_beta = beta;
  const double real = compute_potential_energy(state, ff, 8.5, terms);
  return real + EwaldLongRange(ff, beta, kmax).energy(state);
}

TEST(EwaldLongRange, TotalEnergyIndependentOfBeta) {
  // The defining property of the Ewald split: moving weight between the
  // real-space (RL) and reciprocal-space (LR) halves must not change the
  // total. β·R_c >= 2.55 keeps the real-space truncation at the cutoff
  // below ~3e-4 relative.
  const auto ff = ForceField::sodium_chloride();
  const auto state = salt_state();
  const double e1 = total_coulomb(state, ff, 0.30, 8);
  const double e2 = total_coulomb(state, ff, 0.35, 8);
  const double e3 = total_coulomb(state, ff, 0.40, 9);
  const double scale = std::abs(e1);
  EXPECT_LT(std::abs(e2 - e1) / scale, 2e-3);
  EXPECT_LT(std::abs(e3 - e2) / scale, 2e-3);
}

TEST(EwaldLongRange, MadelungEnergyOfRockSalt) {
  // A perfect rock-salt lattice (zero jitter) has Coulomb energy per ion
  // pair of -M·k_e·q²/a with Madelung constant M = 1.74756 and
  // nearest-neighbour distance a = 4.25 Å here.
  auto ff = ForceField::sodium_chloride();
  DatasetParams p;
  p.particles_per_cell = 8;
  p.jitter = 0.0;
  p.temperature = 0.0;
  p.elements = ElementAssignment::kAlternating;
  const auto state = generate_dataset({3, 3, 3}, 8.5, ff, p);
  const double a = 8.5 / 2.0;
  const double expected_per_pair = -1.747565 * kCoulomb / a;
  const double total = total_coulomb(state, ff, 0.35, 9);
  const double per_pair = total / (static_cast<double>(state.size()) / 2.0);
  EXPECT_NEAR(per_pair, expected_per_pair, 5e-3 * std::abs(expected_per_pair));
}

TEST(EwaldLongRange, ForcesAreMinusEnergyGradient) {
  const auto ff = ForceField::sodium_chloride();
  auto state = salt_state();
  const EwaldLongRange lr(ff, 0.3, 6);
  const auto forces = lr.forces(state);
  const double h = 1e-5;
  for (const std::size_t i : {std::size_t{0}, std::size_t{7}}) {
    for (int axis = 0; axis < 3; ++axis) {
      double geom::Vec3d::*member =
          axis == 0 ? &geom::Vec3d::x : axis == 1 ? &geom::Vec3d::y
                                                  : &geom::Vec3d::z;
      auto plus = state;
      plus.positions[i].*member += h;
      auto minus = state;
      minus.positions[i].*member -= h;
      const double grad = (lr.energy(plus) - lr.energy(minus)) / (2.0 * h);
      const double f = forces[i].*member;
      EXPECT_NEAR(f, -grad, 1e-5 + 1e-4 * std::abs(grad))
          << "particle " << i << " axis " << axis;
    }
  }
}

TEST(EwaldLongRange, ReciprocalForcesSumToZero) {
  const auto ff = ForceField::sodium_chloride();
  const auto state = salt_state();
  const auto forces = EwaldLongRange(ff, 0.3, 6).forces(state);
  geom::Vec3d sum{};
  double scale = 0.0;
  for (const auto& f : forces) {
    sum += f;
    scale = std::max(scale, f.norm());
  }
  EXPECT_LT(sum.norm() / (scale + 1e-30), 1e-9);
}

TEST(EwaldLongRange, NeutralSystemHasNoBackgroundTerm) {
  // Energy of a neutral system is finite and beta-stable even at small
  // kmax; a single ion (non-neutral) invokes the background correction and
  // still returns a finite number.
  const auto ff = ForceField::sodium_chloride();
  SystemState one;
  one.cell_dims = {3, 3, 3};
  one.cell_size = 8.5;
  one.positions = {{12.0, 12.0, 12.0}};
  one.velocities = {{0, 0, 0}};
  one.elements = {0};
  const double e = EwaldLongRange(ff, 0.3, 6).energy(one);
  EXPECT_TRUE(std::isfinite(e));
}

TEST(EwaldLongRange, RejectsBadParameters) {
  const auto ff = ForceField::sodium_chloride();
  EXPECT_THROW(EwaldLongRange(ff, 0.0, 6), std::invalid_argument);
  EXPECT_THROW(EwaldLongRange(ff, 0.3, 0), std::invalid_argument);
}

}  // namespace
}  // namespace fasda::md
