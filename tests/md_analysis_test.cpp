#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "fasda/md/analysis.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/md/energy.hpp"
#include "fasda/md/reference_engine.hpp"
#include "fasda/md/xyz_io.hpp"

namespace fasda::md {
namespace {

SystemState make_state(double temperature = 300.0, int per_cell = 27) {
  DatasetParams p;
  p.particles_per_cell = per_cell;
  p.seed = 4;
  p.temperature = temperature;
  return generate_dataset({3, 3, 3}, 8.5, ForceField::sodium(), p);
}

TEST(Analysis, TemperatureMatchesGeneration) {
  const auto ff = ForceField::sodium();
  const auto s = make_state(250.0);
  EXPECT_NEAR(temperature(s, ff), 250.0, 15.0);
}

TEST(Analysis, RescaleHitsTargetExactly) {
  const auto ff = ForceField::sodium();
  auto s = make_state(250.0);
  rescale_to_temperature(s, ff, 100.0);
  EXPECT_NEAR(temperature(s, ff), 100.0, 1e-9);
  rescale_to_temperature(s, ff, 400.0);
  EXPECT_NEAR(temperature(s, ff), 400.0, 1e-9);
}

TEST(Analysis, RdfIntegratesToPairCount) {
  const auto s = make_state();
  const auto rdf = radial_distribution(s, 8.5, 64);
  // Σ counts = 2 × (unordered pairs within r_max): every ordered pair lands
  // in exactly one bin.
  std::size_t total = 0;
  for (const auto c : rdf.count) total += c;
  EXPECT_EQ(total, 2 * count_pairs_within_cutoff(s, 8.5));
}

TEST(Analysis, RdfShowsLatticeExclusionZone) {
  const auto s = make_state();
  const auto rdf = radial_distribution(s, 8.5, 64);
  // No pairs below the jittered-lattice minimum spacing; g ~ 1 at large r.
  EXPECT_EQ(rdf.count[0], 0u);
  EXPECT_EQ(rdf.count[5], 0u);  // 0.73 Å
  double tail = 0.0;
  for (std::size_t b = 48; b < 64; ++b) tail += rdf.g[b];
  EXPECT_NEAR(tail / 16.0, 1.0, 0.15);
}

TEST(Analysis, RdfPerElementPair) {
  DatasetParams p;
  p.particles_per_cell = 16;
  p.elements = ElementAssignment::kAlternating;
  const auto s =
      generate_dataset({3, 3, 3}, 8.5, ForceField::sodium_chloride(), p);
  const auto all = radial_distribution(s, 8.0, 32);
  const auto na_na = radial_distribution(s, 8.0, 32, 0, 0);
  const auto na_cl = radial_distribution(s, 8.0, 32, 0, 1);
  std::size_t total_all = 0, total_nana = 0, total_nacl = 0;
  for (std::size_t b = 0; b < 32; ++b) {
    total_all += all.count[b];
    total_nana += na_na.count[b];
    total_nacl += na_cl.count[b];
  }
  EXPECT_GT(total_nana, 0u);
  EXPECT_GT(total_nacl, 0u);
  EXPECT_LT(total_nana, total_all);
}

TEST(Analysis, RdfRejectsBadArgs) {
  const auto s = make_state();
  EXPECT_THROW(radial_distribution(s, 20.0, 16), std::invalid_argument);
  EXPECT_THROW(radial_distribution(s, 8.0, 0), std::invalid_argument);
}

TEST(Analysis, MsdGrowsUnderDynamics) {
  const auto ff = ForceField::sodium();
  const auto s = make_state(300.0);
  ReferenceEngine engine(s, ff, 8.5, 2.0, 2);
  MsdTracker tracker(s);
  double last = 0.0;
  for (int block = 0; block < 4; ++block) {
    engine.step(25);
    last = tracker.update(engine.state());
  }
  EXPECT_GT(last, 0.0);
  ASSERT_EQ(tracker.history().size(), 4u);
  // Ballistic/diffusive growth: later samples exceed the first.
  EXPECT_GT(tracker.history().back(), tracker.history().front() * 0.999);
}

TEST(Analysis, MsdUnwrapsPeriodicCrossings) {
  // One particle drifting at constant velocity across the box boundary:
  // MSD must keep growing quadratically, not reset at the wrap.
  const auto ff = ForceField::sodium();
  SystemState s;
  s.cell_dims = {3, 3, 3};
  s.cell_size = 8.5;
  s.positions = {{25.0, 12.0, 12.0}};
  s.velocities = {{0.5, 0.0, 0.0}};
  s.elements = {0};
  MsdTracker tracker(s);
  const auto grid = s.grid();
  for (int step = 1; step <= 20; ++step) {
    s.positions[0] = grid.wrap_position({25.0 + 0.5 * step * 2.0, 12.0, 12.0});
    const double msd = tracker.update(s);
    const double expected = std::pow(0.5 * step * 2.0, 2);
    EXPECT_NEAR(msd, expected, 1e-9) << "step " << step;
  }
}

TEST(XyzIo, RoundTripsThroughStream) {
  const auto ff = ForceField::sodium();
  const auto s = make_state();
  std::stringstream stream;
  write_xyz_frame(stream, s, ff, "step=1");
  write_xyz_frame(stream, s, ff, "step=2");

  SystemState back;
  ASSERT_TRUE(read_xyz_frame(stream, ff, back));
  ASSERT_EQ(back.size(), s.size());
  EXPECT_EQ(back.cell_dims, s.cell_dims);
  EXPECT_NEAR(back.cell_size, s.cell_size, 1e-9);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(back.positions[i].x, s.positions[i].x, 1e-4);
    EXPECT_EQ(back.elements[i], s.elements[i]);
  }
  ASSERT_TRUE(read_xyz_frame(stream, ff, back));
  EXPECT_FALSE(read_xyz_frame(stream, ff, back)) << "EOF after two frames";
}

TEST(XyzIo, WriterCreatesReadableFile) {
  const auto ff = ForceField::sodium();
  const auto s = make_state();
  const std::string path = "/tmp/fasda_xyz_test.xyz";
  {
    XyzWriter writer(path, ff);
    writer.write(s, "frame=0");
    writer.write(s, "frame=1");
    EXPECT_EQ(writer.frames_written(), 2);
  }
  std::ifstream in(path);
  SystemState back;
  int frames = 0;
  while (read_xyz_frame(in, ff, back)) ++frames;
  EXPECT_EQ(frames, 2);
}

TEST(XyzIo, UnknownElementThrows) {
  std::stringstream stream;
  stream << "1\nbox=\"1 1 1\" cells=\"3 3 3\"\nXx 0 0 0\n";
  SystemState back;
  EXPECT_THROW(read_xyz_frame(stream, ForceField::sodium(), back),
               std::runtime_error);
}

}  // namespace
}  // namespace fasda::md
