#include <gtest/gtest.h>

#include "fasda/model/perf_models.hpp"
#include "fasda/model/resource_model.hpp"

namespace fasda::model {
namespace {

core::ClusterConfig weak(geom::IVec3 nodes) {
  core::ClusterConfig c;
  c.node_dims = nodes;
  c.cells_per_node = {3, 3, 3};
  return c;
}

core::ClusterConfig strong(int pes, int spes) {
  core::ClusterConfig c;
  c.node_dims = {2, 2, 2};
  c.cells_per_node = {2, 2, 2};
  c.pes_per_spe = pes;
  c.spes = spes;
  return c;
}

TEST(ResourceModel, SingleFpgaMatchesTable1Row1) {
  const ResourceModel m;
  const auto u = m.utilization(weak({1, 1, 1}));
  // Paper row: LUT 40, FF 22, BRAM 29, URAM 20, DSP 20 (%).
  EXPECT_NEAR(u.lut, 0.40, 0.05);
  EXPECT_NEAR(u.ff, 0.22, 0.04);
  EXPECT_NEAR(u.bram, 0.29, 0.08);
  EXPECT_NEAR(u.uram, 0.20, 0.03);
  EXPECT_NEAR(u.dsp, 0.20, 0.03);
}

TEST(ResourceModel, DistributedDesignCostsMoreThanSingle) {
  const ResourceModel m;
  const auto single = m.per_fpga(weak({1, 1, 1}));
  const auto dual = m.per_fpga(weak({2, 1, 1}));
  EXPECT_GT(dual.lut, single.lut);
  EXPECT_GT(dual.uram, single.uram);
  // Table 1: LUT grows modestly (40 -> 44 %), memory grows significantly.
  EXPECT_LT(dual.lut / single.lut, 1.15);
  EXPECT_GT(dual.uram / single.uram, 1.3);
}

TEST(ResourceModel, CommCostSaturatesWithNeighbors) {
  // Table 1: 6x6x3 (4 FPGAs) and 6x6x6 (8 FPGAs) report identical usage.
  const ResourceModel m;
  const auto four = m.per_fpga(weak({2, 2, 1}));
  const auto eight = m.per_fpga(weak({2, 2, 2}));
  EXPECT_DOUBLE_EQ(four.lut, eight.lut);
  EXPECT_DOUBLE_EQ(four.uram, eight.uram);
}

TEST(ResourceModel, StrongScalingVariantsOrdered) {
  // A < B < C on every fabric resource (Table 1's bottom three rows).
  const ResourceModel m;
  const auto a = m.per_fpga(strong(1, 1));
  const auto b = m.per_fpga(strong(3, 1));
  const auto c = m.per_fpga(strong(3, 2));
  EXPECT_LT(a.lut, b.lut);
  EXPECT_LT(b.lut, c.lut);
  EXPECT_LT(a.dsp, b.dsp);
  EXPECT_LT(b.dsp, c.dsp);
  EXPECT_LT(a.bram, b.bram);
  EXPECT_LT(b.bram, c.bram);
}

TEST(ResourceModel, DspTracksPeCount) {
  // DSPs live in pipelines and MUs; variant C has 6x the PEs of A.
  const ResourceModel m;
  const auto a = m.utilization(strong(1, 1));
  const auto c = m.utilization(strong(3, 2));
  EXPECT_NEAR(a.dsp, 0.06, 0.02);
  EXPECT_NEAR(c.dsp, 0.27, 0.04);
}

TEST(ResourceModel, VariantCFitsOnU280) {
  const ResourceModel m;
  const auto u = m.utilization(strong(3, 2));
  EXPECT_LT(u.lut, 1.0);
  EXPECT_LT(u.ff, 1.0);
  EXPECT_LT(u.bram, 1.0);
  EXPECT_LT(u.uram, 1.0);
  EXPECT_LT(u.dsp, 1.0);
}

TEST(ResourceModel, InterpolationDepthCostsBram) {
  ResourceModel m;
  auto cfg = weak({1, 1, 1});
  const double base = m.per_fpga(cfg).bram;
  cfg.table.num_bins = 1024;  // 4x deeper tables
  EXPECT_GT(m.per_fpga(cfg).bram, base);
}

TEST(PerfModels, PairCountMatchesEq3Density) {
  // 4096 particles at 64 per cell: N * 0.155*27*64/2 pairs.
  EXPECT_NEAR(standard_pair_count(4096), 4096 * 267.84 / 2.0, 1.0);
}

TEST(PerfModels, RateConversion) {
  // 86.4 µs per 2 fs step -> 1e9 steps/day -> 2 µs/day.
  EXPECT_NEAR(us_per_day_from_step_seconds(86.4e-6), 2.0, 1e-9);
}

TEST(GpuModel, SingleA100Near2UsPerDayAt4x4x4) {
  const GpuModel g;
  EXPECT_NEAR(g.us_per_day(4096, 1, GpuKind::kA100), 2.0, 0.3);
}

TEST(GpuModel, NegativeStrongScaling) {
  // §5.2: 2 GPUs lose ~26 %, 4 GPUs ~49 % versus 1 GPU.
  const GpuModel g;
  const double one = g.us_per_day(4096, 1, GpuKind::kA100);
  const double two = g.us_per_day(4096, 2, GpuKind::kA100);
  const double four = g.us_per_day(4096, 4, GpuKind::kV100);
  EXPECT_NEAR(two / one, 0.74, 0.08);
  EXPECT_NEAR(four / one, 0.51, 0.12);
}

TEST(GpuModel, NegativeWeakScaling) {
  // "doubling the number of GPUs ... only provides half the simulation
  // rate" for a doubled workload.
  const GpuModel g;
  const double one = g.us_per_day(1728, 1, GpuKind::kA100);
  const double two = g.us_per_day(2 * 1728, 2, GpuKind::kA100);
  EXPECT_LT(two / one, 0.75);
}

TEST(GpuModel, EfficiencyRisesWithWorkload) {
  // §5.2: 4x4x4 -> 8x8x8 (8x particles) only drops the rate by ~60 %, and
  // 10x10x10 halves it again.
  const GpuModel g;
  const double r4 = g.us_per_day(4096, 1, GpuKind::kA100);
  const double r8 = g.us_per_day(32768, 1, GpuKind::kA100);
  const double r10 = g.us_per_day(64000, 1, GpuKind::kA100);
  EXPECT_GT(r8 / r4, 0.25);
  EXPECT_LT(r8 / r4, 0.45);
  EXPECT_NEAR(r10 / r8, 0.55, 0.12);
}

TEST(GpuModel, V100SlowerThanA100) {
  const GpuModel g;
  EXPECT_LT(g.us_per_day(4096, 1, GpuKind::kV100),
            g.us_per_day(4096, 1, GpuKind::kA100));
}

TEST(CpuModel, ScalesWellToFourThreads) {
  const CpuModel c;
  const double one = c.us_per_day(1728, 1);
  const double four = c.us_per_day(1728, 4);
  EXPECT_GT(four / one, 3.0);
}

TEST(CpuModel, NegativeScalingAtManyThreads) {
  // §5.2: "significant overhead for more than 8 threads and eventually ...
  // negative scaling for 16 threads and beyond".
  const CpuModel c;
  const double sixteen = c.us_per_day(4096, 16);
  const double thirtytwo = c.us_per_day(4096, 32);
  EXPECT_LT(thirtytwo, sixteen);
}

TEST(CpuModel, CompetitiveAtSmallSizesOnly) {
  // CPUs beat a latency-bound GPU on tiny systems but fall behind on the
  // 4x4x4 benchmark space at any thread count.
  const CpuModel c;
  const GpuModel g;
  double best_cpu = 0;
  for (int t : {1, 2, 4, 8, 16, 32}) {
    best_cpu = std::max(best_cpu, c.us_per_day(4096, t));
  }
  EXPECT_LT(best_cpu, g.us_per_day(4096, 1, GpuKind::kA100));
}

}  // namespace
}  // namespace fasda::model
