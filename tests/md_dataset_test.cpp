#include <gtest/gtest.h>

#include <cmath>

#include "fasda/md/dataset.hpp"
#include "fasda/md/energy.hpp"
#include "fasda/md/units.hpp"

namespace fasda::md {
namespace {

DatasetParams small_params() {
  DatasetParams p;
  p.particles_per_cell = 64;
  p.seed = 42;
  return p;
}

TEST(Dataset, PlacesExactCount) {
  const auto ff = ForceField::sodium();
  const auto s = generate_dataset({3, 3, 3}, 8.5, ff, small_params());
  EXPECT_EQ(s.size(), 27u * 64u);
  EXPECT_EQ(s.velocities.size(), s.size());
  EXPECT_EQ(s.elements.size(), s.size());
}

TEST(Dataset, SixtyFourPerCell) {
  const auto ff = ForceField::sodium();
  const auto s = generate_dataset({3, 3, 3}, 8.5, ff, small_params());
  const auto grid = s.grid();
  std::vector<int> counts(grid.num_cells(), 0);
  for (const auto& p : s.positions) counts[grid.cid(grid.cell_of(p))]++;
  for (int c : counts) EXPECT_EQ(c, 64);
}

TEST(Dataset, PositionsInsideBox) {
  const auto ff = ForceField::sodium();
  const auto s = generate_dataset({4, 3, 5}, 8.5, ff, small_params());
  const auto box = s.grid().box();
  for (const auto& p : s.positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, box.x);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, box.y);
    EXPECT_GE(p.z, 0.0);
    EXPECT_LT(p.z, box.z);
  }
}

TEST(Dataset, NoPairTooClose) {
  // The paper requires "none of the particles too close to be excluded":
  // with a 4x4x4 sublattice (spacing 2.125 Å) and ±0.1 Å jitter, every pair
  // must be farther apart than spacing − 2·jitter − ε.
  const auto ff = ForceField::sodium();
  const auto s = generate_dataset({3, 3, 3}, 8.5, ff, small_params());
  const auto grid = s.grid();
  const double min_allowed = 8.5 / 4.0 - 2.0 * 0.1 - 1e-9;
  double min_seen = 1e9;
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (std::size_t j = i + 1; j < s.size(); ++j) {
      const double d = grid.min_image(s.positions[i], s.positions[j]).norm();
      min_seen = std::min(min_seen, d);
    }
  }
  EXPECT_GE(min_seen, min_allowed);
}

TEST(Dataset, DeterministicPerSeed) {
  const auto ff = ForceField::sodium();
  const auto a = generate_dataset({3, 3, 3}, 8.5, ff, small_params());
  const auto b = generate_dataset({3, 3, 3}, 8.5, ff, small_params());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.positions[i], b.positions[i]);
    EXPECT_EQ(a.velocities[i], b.velocities[i]);
  }
  auto p2 = small_params();
  p2.seed = 43;
  const auto c = generate_dataset({3, 3, 3}, 8.5, ff, p2);
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differing += !(a.positions[i] == c.positions[i]);
  }
  EXPECT_GT(differing, 0);
}

TEST(Dataset, NetMomentumIsZero) {
  const auto ff = ForceField::sodium();
  const auto s = generate_dataset({3, 3, 3}, 8.5, ff, small_params());
  const auto p = total_momentum(s, ff);
  EXPECT_NEAR(p.x, 0.0, 1e-10);
  EXPECT_NEAR(p.y, 0.0, 1e-10);
  EXPECT_NEAR(p.z, 0.0, 1e-10);
}

TEST(Dataset, TemperatureMatchesRequest) {
  const auto ff = ForceField::sodium();
  auto params = small_params();
  params.temperature = 300.0;
  const auto s = generate_dataset({4, 4, 4}, 8.5, ff, params);
  // KE = (3/2) N kT (up to the 3 momentum constraints, negligible here).
  const double ke = kinetic_energy(s, ff);
  const double t_measured =
      2.0 * ke / (3.0 * static_cast<double>(s.size()) * units::kBoltzmann);
  EXPECT_NEAR(t_measured, 300.0, 10.0);
}

TEST(Dataset, FilterAcceptanceNearEq3) {
  // Eq. 3: with cell edge = R_c, ~15.5% of the particles in the 27-cell
  // neighbourhood fall within the cutoff sphere. Uniform placement matches
  // the formula's uniform-density assumption; use a density low enough for
  // rejection sampling.
  const auto ff = ForceField::sodium();
  auto params = small_params();
  params.placement = Placement::kUniform;
  params.particles_per_cell = 16;
  params.min_distance = 2.0;
  const auto s = generate_dataset({4, 4, 4}, 8.5, ff, params);
  const std::size_t pairs = count_pairs_within_cutoff(s, 8.5);
  const double m = 2.0 * static_cast<double>(pairs) / static_cast<double>(s.size());
  const double expected = 0.155 * 27.0 * 16.0;
  EXPECT_NEAR(m, expected, 0.06 * expected);
}

TEST(Dataset, LatticeAcceptanceWithinTenPercentOfEq3) {
  // The production (jittered-lattice) dataset sits slightly below the
  // uniform estimate because of lattice shell structure at the cutoff.
  const auto ff = ForceField::sodium();
  const auto s = generate_dataset({4, 4, 4}, 8.5, ff, small_params());
  const std::size_t pairs = count_pairs_within_cutoff(s, 8.5);
  const double m = 2.0 * static_cast<double>(pairs) / static_cast<double>(s.size());
  const double expected = 0.155 * 27.0 * 64.0;
  EXPECT_NEAR(m, expected, 0.10 * expected);
}

TEST(Dataset, UniformPlacementRespectsMinDistance) {
  const auto ff = ForceField::sodium();
  DatasetParams params;
  params.placement = Placement::kUniform;
  params.particles_per_cell = 8;
  params.min_distance = 2.5;
  params.seed = 3;
  const auto s = generate_dataset({3, 3, 3}, 8.5, ff, params);
  const auto grid = s.grid();
  for (std::size_t i = 0; i < s.size(); ++i) {
    for (std::size_t j = i + 1; j < s.size(); ++j) {
      EXPECT_GE(grid.min_image(s.positions[i], s.positions[j]).norm(),
                2.5 - 1e-6);
    }
  }
}

TEST(Dataset, RejectsBadParams) {
  const auto ff = ForceField::sodium();
  DatasetParams p;
  p.particles_per_cell = 0;
  EXPECT_THROW(generate_dataset({3, 3, 3}, 8.5, ff, p), std::invalid_argument);
  EXPECT_THROW(generate_dataset({3, 3, 3}, 8.5, ForceField{}, small_params()),
               std::invalid_argument);
}

TEST(Dataset, SupportsNonCubicSpaces) {
  const auto ff = ForceField::sodium();
  const auto s = generate_dataset({6, 3, 3}, 8.5, ff, small_params());
  EXPECT_EQ(s.size(), 54u * 64u);
  EXPECT_EQ(s.cell_dims, (geom::IVec3{6, 3, 3}));
}

}  // namespace
}  // namespace fasda::md
