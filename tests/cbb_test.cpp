#include <gtest/gtest.h>

#include <cmath>

#include "fasda/cbb/cbb.hpp"
#include "fasda/util/rng.hpp"

namespace fasda::cbb {
namespace {

struct CbbHarness {
  explicit CbbHarness(const CbbConfig& config = CbbConfig{},
                      geom::IVec3 lcell = {1, 1, 1})
      : ff(md::ForceField::sodium()),
        model(ff, 8.5, interp::InterpConfig{}),
        map({1, 1, 1}, {3, 3, 3}),
        block("cbb", config, model, map, {0, 0, 0}, lcell) {
    spes_ = config.spes;
    for (sim::Component* c : block.components()) scheduler.add(c);
    for (sim::Clocked* c : block.clocked()) scheduler.add_clocked(c);
  }

  void fill(int count, std::uint64_t seed = 3) {
    util::Xoshiro256 rng(seed);
    for (int i = 0; i < count; ++i) {
      pe::CellParticle p;
      p.pos = {fixed::FixedCoord::from_cell_offset(2, rng.uniform()),
               fixed::FixedCoord::from_cell_offset(2, rng.uniform()),
               fixed::FixedCoord::from_cell_offset(2, rng.uniform())};
      p.vel = {0.001f, -0.002f, 0.0005f};
      p.elem = 0;
      p.id = static_cast<std::uint32_t>(i);
      block.particles().push_back(p);
    }
  }

  /// Runs cycles; when `drain_rings` is set, consumes whatever the CBB
  /// injects into its ring FIFOs (standing in for the rings, which are not
  /// attached in these unit tests).
  void run(int cycles, bool drain_rings = false) {
    for (int i = 0; i < cycles; ++i) {
      if (drain_rings) {
        for (int s = 0; s < spes_; ++s) {
          auto* pos = block.pos_station(s).inject_source();
          if (!pos->empty()) drained_pos.push_back(pos->pop());
          auto* frc = block.frc_station(s).inject_source();
          if (!frc->empty()) drained_frc.push_back(frc->pop());
        }
        auto* mu = block.mu_station().inject_source();
        if (!mu->empty()) drained_mu.push_back(mu->pop());
      }
      scheduler.run_cycle();
    }
  }

  int spes_ = 1;
  std::vector<ring::PosToken> drained_pos;
  std::vector<ring::ForceToken> drained_frc;
  std::vector<ring::MigrateToken> drained_mu;

  md::ForceField ff;
  pe::ForceModel model;
  idmap::ClusterMap map;
  Cbb block;
  sim::Scheduler scheduler;
};

TEST(Cbb, HomePairsProduceForces) {
  CbbHarness h;
  h.fill(16);
  h.block.begin_force_phase();
  for (int i = 0; i < 5000 && !h.block.force_quiescent(); ++i) h.run(1, true);
  ASSERT_TRUE(h.block.force_quiescent());
  // Newton's third law within the cell: forces sum to ~0.
  geom::Vec3f sum{};
  double magnitude = 0.0;
  for (const auto& f : h.block.forces()) {
    sum += f;
    magnitude += f.cast<double>().norm();
  }
  EXPECT_GT(magnitude, 0.0);
  EXPECT_LT(sum.cast<double>().norm() / magnitude, 1e-5);
}

TEST(Cbb, PositionsInjectedOntoRing) {
  CbbHarness h;
  h.fill(8);
  h.block.begin_force_phase();
  EXPECT_FALSE(h.block.positions_injected());
  h.run(50);
  EXPECT_TRUE(h.block.positions_injected());
  // Without a ring draining pr_inject the CBB must not be quiescent… the
  // injected tokens sit in the injection FIFO.
  EXPECT_FALSE(h.block.force_quiescent());
}

TEST(Cbb, MotionUpdateIntegratesVelocity) {
  CbbHarness h;
  h.fill(4);
  // Skip force evaluation: zero forces, constant velocity drift.
  h.block.begin_force_phase();
  for (int i = 0; i < 5000 && !h.block.force_quiescent(); ++i) h.run(1, true);
  const auto before = h.block.particles();
  h.block.begin_motion_update(2.0f, 8.5, h.ff);
  for (int i = 0; i < 200 && !h.block.mu_done(); ++i) h.run(1);
  ASSERT_TRUE(h.block.mu_done());
  const auto& after = h.block.particles();
  for (std::size_t i = 0; i < after.size(); ++i) {
    // x advances by vx*dt/cell = 0.001*2/8.5 cells.
    const double expected =
        before[i].pos.x.to_double() + 0.001 * 2.0 / 8.5;
    EXPECT_NEAR(after[i].pos.x.to_double(), expected, 1e-5);
  }
}

TEST(Cbb, MigrationEmitsTokenAndRemovesParticle) {
  CbbHarness h;
  pe::CellParticle p;
  p.pos = {fixed::FixedCoord::from_cell_offset(2, 0.999),
           fixed::FixedCoord::from_cell_offset(2, 0.5),
           fixed::FixedCoord::from_cell_offset(2, 0.5)};
  p.vel = {0.5f, 0.0f, 0.0f};  // fast: crosses the +x boundary in one step
  p.elem = 0;
  p.id = 42;
  h.block.particles().push_back(p);
  h.block.begin_force_phase();
  for (int i = 0; i < 2000 && !h.block.force_quiescent(); ++i) h.run(1, true);
  h.block.begin_motion_update(2.0f, 8.5, h.ff);
  for (int i = 0; i < 100 && !h.block.mu_done(); ++i) h.run(1, true);
  ASSERT_TRUE(h.block.mu_done());
  // The harness drained the MU ring token: it targets the +x neighbour and
  // carries the particle id.
  ASSERT_EQ(h.drained_mu.size(), 1u);
  EXPECT_EQ(h.drained_mu[0].dest_lcid, (geom::IVec3{2, 1, 1}));
  EXPECT_EQ(h.drained_mu[0].particle_id, 42u);
  // The particle is tombstoned and disappears at the next force phase.
  h.block.begin_force_phase();
  EXPECT_TRUE(h.block.particles().empty());
}

TEST(Cbb, MigrationArrivalAppendsParticle) {
  CbbHarness h;
  h.fill(2);
  ring::MigrateToken token;
  token.dest_lcid = {1, 1, 1};
  token.offset = {fixed::FixedCoord::from_cell_offset(2, 0.1),
                  fixed::FixedCoord::from_cell_offset(2, 0.2),
                  fixed::FixedCoord::from_cell_offset(2, 0.3)};
  token.vel = {0.0f, 0.0f, 0.0f};
  token.elem = 0;
  token.particle_id = 77;
  ASSERT_TRUE(h.block.mu_station().try_deliver(token));
  h.run(2);  // commit + intake
  ASSERT_EQ(h.block.particles().size(), 3u);
  EXPECT_EQ(h.block.particles().back().id, 77u);
  EXPECT_TRUE(h.block.migration_intake_empty());
}

TEST(Cbb, MuStationOnlyAcceptsOwnCell) {
  CbbHarness h;
  ring::MigrateToken mine;
  mine.dest_lcid = {1, 1, 1};
  ring::MigrateToken other;
  other.dest_lcid = {0, 1, 1};
  using Action = ring::Station<ring::MigrateToken>::Action;
  EXPECT_EQ(h.block.mu_station().classify(mine), Action::kDeliverAndDrop);
  EXPECT_EQ(h.block.mu_station().classify(other), Action::kPass);
}

TEST(Cbb, PosStationAcceptsForwardNeighborsOnly) {
  CbbHarness h;  // cell (1,1,1) in a 3x3x3 single node
  using Action = ring::Station<ring::PosToken>::Action;
  ring::PosToken token;
  token.deliveries_remaining = 5;
  // (0,1,1) -> (1,1,1) is +x: forward, so the PRN accepts.
  token.src_lcid = {0, 1, 1};
  EXPECT_EQ(h.block.pos_station(0).classify(token), Action::kDeliver);
  // Last delivery drops the token from the ring.
  token.deliveries_remaining = 1;
  EXPECT_EQ(h.block.pos_station(0).classify(token), Action::kDeliverAndDrop);
  // (2,1,1) -> (1,1,1) is -x: backward, pass.
  token.src_lcid = {2, 1, 1};
  EXPECT_EQ(h.block.pos_station(0).classify(token), Action::kPass);
  // Own cell: never a neighbour of itself.
  token.src_lcid = {1, 1, 1};
  EXPECT_EQ(h.block.pos_station(0).classify(token), Action::kPass);
}

TEST(Cbb, FrcStationMatchesExactCell) {
  CbbHarness h;
  h.fill(4);
  h.block.begin_force_phase();  // sizes the force array
  using Action = ring::Station<ring::ForceToken>::Action;
  ring::ForceToken token;
  token.dest_lcid = {1, 1, 1};
  token.slot = 2;
  token.force = {1.0f, 2.0f, 3.0f};
  EXPECT_EQ(h.block.frc_station(0).classify(token), Action::kDeliverAndDrop);
  ASSERT_TRUE(h.block.frc_station(0).try_deliver(token));
  EXPECT_FLOAT_EQ(h.block.forces()[2].y, 2.0f);
  token.dest_lcid = {0, 0, 0};
  EXPECT_EQ(h.block.frc_station(0).classify(token), Action::kPass);
}

TEST(Cbb, RemoteOfferFiresForBoundaryCells) {
  // In a 2x2x2-node cluster every cell of a 2x2x2 block borders other
  // FPGAs, so each injected position is offered to the P2R chain.
  md::ForceField ff = md::ForceField::sodium();
  pe::ForceModel model(ff, 8.5, interp::InterpConfig{});
  idmap::ClusterMap map({2, 2, 2}, {2, 2, 2});
  Cbb block("cbb", CbbConfig{}, model, map, {0, 0, 0}, {1, 1, 1});
  int offers = 0;
  block.set_remote_position_sink([&](const RemotePosition&) { ++offers; });

  sim::Scheduler scheduler;
  for (sim::Component* c : block.components()) scheduler.add(c);
  for (sim::Clocked* c : block.clocked()) scheduler.add_clocked(c);
  for (int i = 0; i < 4; ++i) {
    pe::CellParticle p;
    p.pos = {fixed::FixedCoord::from_cell_offset(2, 0.5),
             fixed::FixedCoord::from_cell_offset(2, 0.5),
             fixed::FixedCoord::from_cell_offset(2, 0.5)};
    p.id = static_cast<std::uint32_t>(i);
    block.particles().push_back(p);
  }
  block.begin_force_phase();
  for (int i = 0; i < 100; ++i) scheduler.run_cycle();
  EXPECT_EQ(offers, 4);
}

TEST(Cbb, ScbbVariantBuildsMultipleRingInterfaces) {
  CbbConfig config;
  config.pes_per_spe = 3;
  config.spes = 2;
  CbbHarness h(config);
  EXPECT_EQ(h.block.num_pes(), 6);
  EXPECT_EQ(h.block.num_fcs(), 2 * 4);
  // Both SPE ring interfaces exist and are distinct.
  EXPECT_NE(&h.block.pos_station(0), &h.block.pos_station(1));
  EXPECT_NE(&h.block.frc_station(0), &h.block.frc_station(1));
}

TEST(Cbb, ScbbSplitsInjectionBySlotParity) {
  CbbConfig config;
  config.spes = 2;
  CbbHarness h(config);
  h.fill(8);
  h.block.begin_force_phase();
  h.run(30);
  // Even slots feed ring 0, odd slots ring 1 (PC0/PC1, §4.6): drain both
  // injection FIFOs via their stations and count.
  int even = 0, odd = 0;
  for (int s = 0; s < 2; ++s) {
    auto* fifo = h.block.pos_station(s).inject_source();
    while (!fifo->empty()) {
      const auto token = fifo->pop();
      (token.slot % 2 == 0 ? even : odd)++;
      EXPECT_EQ(static_cast<int>(token.slot % 2), s);
    }
  }
  EXPECT_EQ(even, 4);
  EXPECT_EQ(odd, 4);
}

}  // namespace
}  // namespace fasda::cbb
