// The safety case for idle-cycle elision (DESIGN.md §13): the elided
// scheduler loop — per-component wake oracles, per-shard sleep, deferred
// skip windows — must be BITWISE identical to the naive
// every-component-every-cycle loop. Same particle trajectories, same
// forces, same cycle counts, same traffic matrices, same metrics
// snapshots; for 1, 2 and 4 workers; on clean runs, under ~10% mixed link
// faults with the retransmit protocol armed, and across a node crash
// recovered by the supervisor. Run in CI with FASDA_NAIVE_TICK toggled so
// the escape hatch itself stays honest (see .github/workflows/ci.yml,
// job `elision-diff`).

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fasda/core/simulation.hpp"
#include "fasda/engine/registry.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/obs/obs.hpp"
#include "fasda/sim/kernel.hpp"
#include "fasda/supervisor/supervisor.hpp"

namespace fasda {
namespace {

md::SystemState make_state(geom::IVec3 dims, int per_cell = 8,
                           std::uint64_t seed = 21) {
  md::DatasetParams p;
  p.particles_per_cell = per_cell;
  p.seed = seed;
  p.temperature = 200.0;
  return md::generate_dataset(dims, 8.5, md::ForceField::sodium(), p);
}

struct RunResult {
  md::SystemState state;
  std::vector<geom::Vec3f> forces;
  sim::Cycle cycles = 0;
  std::uint64_t pairs = 0;
  net::TrafficMatrix positions, forces_traffic, migrations;
  sim::ElisionStats elision;
  std::string metrics_json;
};

/// 2x2x2 FPGA nodes x 2x2x2 cells: multi-node traffic on every class, small
/// enough that the naive leg of each differential stays cheap.
core::ClusterConfig multi_node_config() {
  core::ClusterConfig c;
  c.node_dims = {2, 2, 2};
  c.cells_per_node = {2, 2, 2};
  c.channel.link_latency = 50;
  return c;
}

RunResult run_cluster(core::ClusterConfig config, int workers,
                      sim::TickMode mode, int iters = 2) {
  config.num_worker_threads = workers;
  config.tick_mode = mode;
  obs::Hub hub;
  config.obs = &hub;
  const geom::IVec3 dims = {config.node_dims.x * config.cells_per_node.x,
                            config.node_dims.y * config.cells_per_node.y,
                            config.node_dims.z * config.cells_per_node.z};
  const auto state = make_state(dims);
  core::Simulation sim(state, md::ForceField::sodium(), config);
  sim.run(iters);
  RunResult r;
  r.state = sim.state();
  r.forces = sim.forces_by_particle();
  r.cycles = sim.total_cycles();
  r.pairs = sim.pairs_issued();
  const auto traffic = sim.traffic();
  r.positions = traffic.positions;
  r.forces_traffic = traffic.forces;
  r.migrations = traffic.migrations;
  r.elision = sim.elision_stats();
  r.metrics_json = hub.metrics().snapshot().to_json();
  return r;
}

template <class T>
bool bitwise_equal(const T& a, const T& b) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::memcmp(&a, &b, sizeof(T)) == 0;
}

void expect_identical(const RunResult& got, const RunResult& want,
                      const std::string& label) {
  EXPECT_EQ(got.cycles, want.cycles) << label;
  EXPECT_EQ(got.pairs, want.pairs) << label;

  ASSERT_EQ(got.state.positions.size(), want.state.positions.size()) << label;
  std::size_t bad = 0;
  for (std::size_t i = 0; i < want.state.positions.size(); ++i) {
    if (!bitwise_equal(got.state.positions[i], want.state.positions[i])) ++bad;
    if (!bitwise_equal(got.state.velocities[i], want.state.velocities[i]))
      ++bad;
    if (got.state.elements[i] != want.state.elements[i]) ++bad;
  }
  EXPECT_EQ(bad, 0u) << label << ": particle state diverged";

  ASSERT_EQ(got.forces.size(), want.forces.size()) << label;
  bad = 0;
  for (std::size_t i = 0; i < want.forces.size(); ++i) {
    if (!bitwise_equal(got.forces[i], want.forces[i])) ++bad;
  }
  EXPECT_EQ(bad, 0u) << label << ": forces diverged";

  EXPECT_EQ(got.positions.total_packets, want.positions.total_packets) << label;
  EXPECT_EQ(got.positions.packets, want.positions.packets) << label;
  EXPECT_EQ(got.forces_traffic.total_packets, want.forces_traffic.total_packets)
      << label;
  EXPECT_EQ(got.forces_traffic.packets, want.forces_traffic.packets) << label;
  EXPECT_EQ(got.migrations.total_packets, want.migrations.total_packets)
      << label;
  EXPECT_EQ(got.migrations.packets, want.migrations.packets) << label;

  // The telemetry pillar: everything the hub published is derived from
  // simulated state, so the merged snapshots must render identically.
  EXPECT_EQ(got.metrics_json, want.metrics_json) << label
      << ": metrics snapshot diverged";
}

/// ~10% mixed wire faults on every traffic class; the ack/retransmit
/// protocol (armed by the mere presence of the plan) recovers them all.
net::FaultPlan mixed_link_faults() {
  net::FaultPlan plan;
  plan.seed = 0xFA57;
  plan.all = {.drop = 0.1, .dup = 0.05, .reorder = 0.05, .corrupt = 0.05};
  return plan;
}

// ------------------------------------------------------------- clean runs

TEST(TickElision, CleanRunBitwiseIdenticalAcrossWorkerCounts) {
  const auto config = multi_node_config();
  const RunResult want = run_cluster(config, 1, sim::TickMode::kNaive);
  ASSERT_GT(want.positions.total_packets, 0u) << "multi-node traffic expected";
  EXPECT_EQ(want.elision.elided_cycles, 0u) << "naive loop must never skip";
  EXPECT_EQ(want.elision.component_idle_skips, 0u);
  for (const int workers : {1, 2, 4}) {
    const RunResult got = run_cluster(config, workers, sim::TickMode::kElide);
    expect_identical(got, want, "elide workers=" + std::to_string(workers));
    // The differential is only meaningful if the elided loop actually took
    // its fast paths on this workload.
    EXPECT_GT(got.elision.component_idle_skips, 0u)
        << "workers=" << workers << ": oracle never slept a component";
    // Naive at every worker count too: the baseline itself must not depend
    // on the thread count (guards the differential's other leg).
    if (workers != 1) {
      expect_identical(run_cluster(config, workers, sim::TickMode::kNaive),
                       want, "naive workers=" + std::to_string(workers));
    }
  }
}

// High link latency is where whole-cluster windows get elided (every
// component waiting on packets in flight); the jump path must still be
// bitwise transparent.
TEST(TickElision, ElidedWindowsUnderHighLinkLatency) {
  auto config = multi_node_config();
  config.channel.link_latency = 800;
  const RunResult want = run_cluster(config, 1, sim::TickMode::kNaive, 1);
  const RunResult got = run_cluster(config, 1, sim::TickMode::kElide, 1);
  EXPECT_GT(got.elision.elided_cycles, 0u)
      << "long links should produce whole elided windows";
  expect_identical(got, want, "link_latency=800");
}

TEST(TickElision, BulkSyncBarrierWakeIsBitwiseSafe) {
  auto config = multi_node_config();
  config.sync_mode = sync::SyncMode::kBulk;
  config.bulk_barrier_latency = 500;
  const RunResult want = run_cluster(config, 1, sim::TickMode::kNaive);
  for (const int workers : {1, 4}) {
    const RunResult got = run_cluster(config, workers, sim::TickMode::kElide);
    expect_identical(got, want, "bulk workers=" + std::to_string(workers));
  }
}

// ------------------------------------------------------ faulty-wire runs

TEST(TickElision, LinkFaultsBitwiseIdenticalAcrossWorkerCounts) {
  auto config = multi_node_config();
  config.faults = mixed_link_faults();
  const RunResult want = run_cluster(config, 1, sim::TickMode::kNaive);
  for (const int workers : {1, 2, 4}) {
    const RunResult got = run_cluster(config, workers, sim::TickMode::kElide);
    expect_identical(got, want,
                     "faults workers=" + std::to_string(workers));
  }
}

// --------------------------------------------- crash + supervised recovery

engine::EngineSpec crashing_spec(int workers, bool naive) {
  engine::EngineSpec spec;
  spec.engine = "cycle";
  spec.cells_per_node = geom::IVec3{2, 2, 2};
  spec.num_worker_threads = workers;
  spec.naive_tick = naive;
  spec.faults = net::FaultPlan::parse("crash=1-2500");
  spec.reliability.max_retries = 3;  // quick dead-board detection
  return spec;
}

md::SystemState crash_cluster_state() {
  md::DatasetParams p;
  p.particles_per_cell = 8;
  p.seed = 17;
  p.temperature = 300.0;
  return md::generate_dataset({4, 4, 4}, 8.5, md::ForceField::sodium(), p);
}

TEST(TickElision, CrashRecoveryBitwiseIdenticalAcrossWorkerCounts) {
  constexpr int kSteps = 4;  // ~1.1k cycles/step: crash at 2500 lands mid-run
  const auto state = crash_cluster_state();

  auto supervised = [&](int workers, bool naive) {
    supervisor::SupervisorConfig cfg;
    cfg.checkpoint_every = 1;
    supervisor::Supervisor sup(state, md::ForceField::sodium(),
                               crashing_spec(workers, naive), cfg);
    return sup.run(kSteps);
  };

  const auto want = supervised(1, /*naive=*/true);
  ASSERT_TRUE(want.completed) << want.final_error;
  ASSERT_EQ(want.restarts, 1);

  for (const int workers : {1, 2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const auto got = supervised(workers, /*naive=*/false);
    ASSERT_TRUE(got.completed) << got.final_error;
    EXPECT_EQ(got.restarts, want.restarts);
    EXPECT_EQ(got.steps, want.steps);
    ASSERT_EQ(got.final_state.size(), want.final_state.size());
    std::size_t bad = 0;
    for (std::size_t i = 0; i < want.final_state.size(); ++i) {
      if (!bitwise_equal(got.final_state.positions[i],
                         want.final_state.positions[i]))
        ++bad;
      if (!bitwise_equal(got.final_state.velocities[i],
                         want.final_state.velocities[i]))
        ++bad;
    }
    EXPECT_EQ(bad, 0u) << "recovered trajectory diverged";
  }
}

// ------------------------------------------------------- escape hatch

TEST(TickElision, EnvEscapeHatchForcesNaive) {
  ASSERT_EQ(setenv("FASDA_NAIVE_TICK", "1", 1), 0);
  EXPECT_EQ(sim::resolve_tick_mode(sim::TickMode::kElide),
            sim::TickMode::kNaive);
  ASSERT_EQ(setenv("FASDA_NAIVE_TICK", "0", 1), 0);
  EXPECT_EQ(sim::resolve_tick_mode(sim::TickMode::kElide),
            sim::TickMode::kElide);
  ASSERT_EQ(unsetenv("FASDA_NAIVE_TICK"), 0);
  EXPECT_EQ(sim::resolve_tick_mode(sim::TickMode::kElide),
            sim::TickMode::kElide);

  // End-to-end: with the variable set, a Simulation configured for elision
  // runs the naive loop (no skips, no elided windows).
  ASSERT_EQ(setenv("FASDA_NAIVE_TICK", "1", 1), 0);
  auto config = multi_node_config();
  const RunResult got = run_cluster(config, 1, sim::TickMode::kElide, 1);
  ASSERT_EQ(unsetenv("FASDA_NAIVE_TICK"), 0);
  EXPECT_EQ(got.elision.elided_cycles, 0u);
  EXPECT_EQ(got.elision.component_idle_skips, 0u);
}

}  // namespace
}  // namespace fasda
