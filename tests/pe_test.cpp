#include <gtest/gtest.h>

#include <cmath>

#include "fasda/md/energy.hpp"
#include "fasda/pe/processing_element.hpp"
#include "fasda/util/rng.hpp"

namespace fasda::pe {
namespace {

class CaptureSink : public ForceSink {
 public:
  explicit CaptureSink(std::size_t slots) : forces(slots) {}
  void accumulate(std::uint16_t slot, const geom::Vec3f& force, int) override {
    ASSERT_LT(slot, forces.size());
    forces[slot] += force;
  }
  std::vector<geom::Vec3f> forces;
};

/// Drains the PE output FIFO so retirement never backpressures.
class OutputDrain : public sim::Component {
 public:
  explicit OutputDrain(sim::Fifo<ring::ForceToken>* out)
      : Component("drain"), out_(out) {}
  void tick(sim::Cycle) override {
    if (!out_->empty()) tokens.push_back(out_->pop());
  }
  std::vector<ring::ForceToken> tokens;

 private:
  sim::Fifo<ring::ForceToken>* out_;
};

struct PeHarness {
  PeHarness(int num_home, std::uint64_t seed = 11,
            const PEConfig& config = PEConfig{})
      : ff(md::ForceField::sodium()),
        model(ff, 8.5, interp::InterpConfig{}),
        home(),
        sink(num_home),
        pe("pe", config, model, &home, &sink, 0),
        drain(&pe.output()) {
    util::Xoshiro256 rng(seed);
    for (int i = 0; i < num_home; ++i) {
      home.push_back(CellParticle{
          {fixed::FixedCoord::from_cell_offset(2, rng.uniform()),
           fixed::FixedCoord::from_cell_offset(2, rng.uniform()),
           fixed::FixedCoord::from_cell_offset(2, rng.uniform())},
          {},
          0,
          static_cast<std::uint32_t>(i)});
    }
    scheduler.add(&pe);
    scheduler.add(&drain);
    scheduler.add_clocked(&pe.input());
    scheduler.add_clocked(&pe.output());
  }

  void run_until_quiescent(sim::Cycle budget = 100000) {
    scheduler.run_until([&] { return pe.quiescent(); }, budget);
    // A few extra cycles so staged output tokens drain.
    for (int i = 0; i < 4; ++i) scheduler.run_cycle();
  }

  md::ForceField ff;
  ForceModel model;
  std::vector<CellParticle> home;
  CaptureSink sink;
  ProcessingElement pe;
  OutputDrain drain;
  sim::Scheduler scheduler;
};

Reference home_ref(const CellParticle& p, std::uint16_t index) {
  Reference r;
  r.pos = p.pos;
  r.elem = p.elem;
  r.is_home = true;
  r.home_index = index;
  return r;
}

TEST(ProcessingElement, HomePairsMatchAnalyticForces) {
  PeHarness h(12);
  for (std::size_t i = 0; i < h.home.size(); ++i) {
    ASSERT_TRUE(h.pe.input().push(home_ref(h.home[i], i)));
  }
  // depth-16 input queue holds all 12 references.
  h.run_until_quiescent();

  // Golden: every unordered home pair within the cutoff, via the same
  // numeric model.
  std::vector<geom::Vec3f> expected(h.home.size());
  for (std::size_t i = 0; i < h.home.size(); ++i) {
    for (std::size_t j = i + 1; j < h.home.size(); ++j) {
      if (!h.model.filter(fixed::r2_fixed(h.home[i].pos, h.home[j].pos))) continue;
      const geom::Vec3f f = h.model.pair_force(h.home[j].pos, 0, h.home[i].pos, 0);
      expected[j] += f;
      expected[i] -= f;
    }
  }
  // Random in-cell placement produces huge repulsive contributions that
  // cancel, so summation-order noise scales with the largest term, not the
  // net; tolerance follows the contribution magnitude.
  float contribution_scale = 1.0f;
  for (const auto& e : expected) {
    contribution_scale =
        std::max(contribution_scale, std::abs(e.x) + std::abs(e.y) + std::abs(e.z));
  }
  const float tol = 2e-5f * contribution_scale;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(h.sink.forces[i].x, expected[i].x, tol) << "slot " << i;
    EXPECT_NEAR(h.sink.forces[i].y, expected[i].y, tol) << "slot " << i;
    EXPECT_NEAR(h.sink.forces[i].z, expected[i].z, tol) << "slot " << i;
  }
  EXPECT_TRUE(h.drain.tokens.empty()) << "home refs retire into the FC";
}

TEST(ProcessingElement, NeighborRefReturnsNegatedAccumulatedForce) {
  PeHarness h(8);
  Reference ref;
  // Neighbour particle one cell to the left on x: RCID x = 1.
  ref.pos = {fixed::FixedCoord::from_cell_offset(1, 0.9),
             fixed::FixedCoord::from_cell_offset(2, 0.5),
             fixed::FixedCoord::from_cell_offset(2, 0.5)};
  ref.elem = 0;
  ref.src_lcid = {7, 8, 9};
  ref.slot = 3;
  ASSERT_TRUE(h.pe.input().push(ref));
  h.run_until_quiescent();

  geom::Vec3f expected_on_ref{};
  bool any = false;
  for (const auto& p : h.home) {
    if (!h.model.filter(fixed::r2_fixed(ref.pos, p.pos))) continue;
    expected_on_ref -= h.model.pair_force(p.pos, 0, ref.pos, 0);
    any = true;
  }
  ASSERT_TRUE(any) << "test fixture should produce at least one valid pair";
  ASSERT_EQ(h.drain.tokens.size(), 1u);
  const auto& t = h.drain.tokens[0];
  EXPECT_EQ(t.dest_lcid, (geom::IVec3{7, 8, 9}));
  EXPECT_EQ(t.slot, 3);
  EXPECT_NEAR(t.force.x, expected_on_ref.x, 1e-6f);
  EXPECT_NEAR(t.force.y, expected_on_ref.y, 1e-6f);
  EXPECT_NEAR(t.force.z, expected_on_ref.z, 1e-6f);
}

TEST(ProcessingElement, ZeroForceReferencesAreDiscarded) {
  PeHarness h(4);
  Reference ref;
  // Far corner of a diagonal neighbour cell: no home particle within R_c.
  ref.pos = {fixed::FixedCoord::from_cell_offset(3, 0.99),
             fixed::FixedCoord::from_cell_offset(3, 0.99),
             fixed::FixedCoord::from_cell_offset(3, 0.99)};
  ref.elem = 0;
  ref.src_lcid = {1, 1, 1};
  ref.slot = 0;
  // Clump home particles near the cell origin so the filter rejects all.
  for (auto& p : h.home) {
    p.pos = {fixed::FixedCoord::from_cell_offset(2, 0.01),
             fixed::FixedCoord::from_cell_offset(2, 0.01),
             fixed::FixedCoord::from_cell_offset(2, 0.01)};
  }
  ASSERT_TRUE(h.pe.input().push(ref));
  h.run_until_quiescent();
  EXPECT_TRUE(h.drain.tokens.empty()) << "§5.4: zero forces are discarded";
  EXPECT_EQ(h.pe.zero_force_refs(), 1u);
  EXPECT_EQ(h.pe.refs_processed(), 1u);
}

TEST(ProcessingElement, ThroughputBoundedByStreamPasses) {
  // 64 home particles, 6 filters, 16 neighbour references: ceil(16/6) = 3
  // passes of 64 cycles plus drain — the cycle count must be in that
  // ballpark, not per-pair serial (16*64 filter comparisons done 6-wide).
  PeHarness h(64, 5);
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 16; ++i) {
    Reference ref;
    ref.pos = {fixed::FixedCoord::from_cell_offset(1, rng.uniform()),
               fixed::FixedCoord::from_cell_offset(2, rng.uniform()),
               fixed::FixedCoord::from_cell_offset(2, rng.uniform())};
    ref.elem = 0;
    ref.src_lcid = {0, 0, 0};
    ref.slot = static_cast<std::uint16_t>(i);
    ASSERT_TRUE(h.pe.input().push(ref));
  }
  h.scheduler.run_until([&] { return h.pe.quiescent(); }, 10000);
  const auto cycles = h.scheduler.cycle();
  EXPECT_GE(cycles, 3u * 64u);
  EXPECT_LT(cycles, 3u * 64u + 400u);
  EXPECT_EQ(h.pe.refs_processed(), 16u);  // includes any zero-force refs
}

TEST(ProcessingElement, UtilizationCounterspopulated) {
  PeHarness h(32);
  for (std::size_t i = 0; i < h.home.size() && i < 16; ++i) {
    h.pe.input().push(home_ref(h.home[i], i));
  }
  h.run_until_quiescent();
  EXPECT_GT(h.pe.filter_util().hardware_utilization(), 0.0);
  EXPECT_GT(h.pe.pe_util().time_utilization(h.scheduler.cycle()), 0.0);
  EXPECT_GT(h.pe.pairs_issued(), 0u);
}

TEST(ProcessingElement, QuiescentInitiallyAndAfterWork) {
  PeHarness h(8);
  EXPECT_TRUE(h.pe.quiescent());
  h.pe.input().push(home_ref(h.home[0], 0));
  h.pe.input().commit();
  EXPECT_FALSE(h.pe.quiescent());
  h.run_until_quiescent();
  EXPECT_TRUE(h.pe.quiescent());
}

}  // namespace
}  // namespace fasda::pe
