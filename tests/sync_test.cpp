#include <gtest/gtest.h>

#include "fasda/sync/sync.hpp"

namespace fasda::sync {
namespace {

TEST(ChainedSync, FourCriteriaGateMotionUpdate) {
  ChainedSync s(3);
  s.begin_iteration();
  EXPECT_FALSE(s.may_enter_motion_update());
  s.mark_last_position_sent();
  s.mark_last_force_sent();
  EXPECT_FALSE(s.may_enter_motion_update());
  for (int i = 0; i < 3; ++i) s.on_last_position_received();
  EXPECT_FALSE(s.may_enter_motion_update());
  for (int i = 0; i < 2; ++i) s.on_last_force_received();
  EXPECT_FALSE(s.may_enter_motion_update()) << "2 of 3 forces received";
  s.on_last_force_received();
  EXPECT_TRUE(s.may_enter_motion_update());
}

TEST(ChainedSync, MotionUpdateUsesSimplifiedSingleSignal) {
  ChainedSync s(2);
  s.begin_iteration();
  EXPECT_FALSE(s.may_finish_motion_update());
  s.mark_last_mu_sent();
  EXPECT_FALSE(s.may_finish_motion_update());
  s.on_last_mu_received();
  s.on_last_mu_received();
  EXPECT_TRUE(s.may_finish_motion_update());
}

TEST(ChainedSync, BeginIterationResetsEverything) {
  ChainedSync s(1);
  s.begin_iteration();
  s.mark_last_position_sent();
  s.mark_last_force_sent();
  s.on_last_position_received();
  s.on_last_force_received();
  ASSERT_TRUE(s.may_enter_motion_update());
  s.begin_iteration();
  EXPECT_FALSE(s.may_enter_motion_update());
  EXPECT_FALSE(s.last_position_sent());
}

TEST(ChainedSync, ZeroNeighborsTriviallySatisfied) {
  ChainedSync s(0);
  s.begin_iteration();
  s.mark_last_position_sent();
  s.mark_last_force_sent();
  EXPECT_TRUE(s.may_enter_motion_update());
  s.mark_last_mu_sent();
  EXPECT_TRUE(s.may_finish_motion_update());
}

TEST(BulkBarrier, ReleasesAfterLastArrivalPlusLatency) {
  BulkBarrier barrier(3, 100);
  barrier.arrive(0, 10);
  barrier.arrive(0, 20);
  EXPECT_FALSE(barrier.released(0, 1000)) << "only 2 of 3 arrived";
  barrier.arrive(0, 50);
  EXPECT_FALSE(barrier.released(0, 149));
  EXPECT_TRUE(barrier.released(0, 150));
}

TEST(BulkBarrier, GenerationsAreIndependent) {
  BulkBarrier barrier(2, 10);
  barrier.arrive(0, 0);
  barrier.arrive(0, 5);
  EXPECT_TRUE(barrier.released(0, 15));
  EXPECT_FALSE(barrier.released(1, 1000));
  barrier.arrive(1, 20);
  barrier.arrive(1, 30);
  EXPECT_TRUE(barrier.released(1, 40));
  EXPECT_TRUE(barrier.released(0, 40)) << "past generations stay released";
}

TEST(BulkBarrier, OverArrivalThrows) {
  BulkBarrier barrier(1, 0);
  barrier.arrive(0, 0);
  EXPECT_THROW(barrier.arrive(0, 1), std::logic_error);
}

}  // namespace
}  // namespace fasda::sync
