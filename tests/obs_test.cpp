// fasda::obs (DESIGN.md §12): metrics registry, cycle-stamped trace bus,
// and the surfaces that publish into them.
//
// The headline property mirrors the layer's acceptance criterion: a
// cluster run with every fault class armed produces a metrics snapshot
// (JSON and Prometheus) and a Chrome trace BITWISE identical for 1, 2 and
// 4 scheduler workers — telemetry is derived from simulated state only,
// never from thread interleaving. The exported trace is also structurally
// valid: every span balanced, timestamps monotone per track (the same
// checks tools/validate_trace.py runs in CI).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "fasda/core/simulation.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/obs/obs.hpp"
#include "fasda/obs/server_stats.hpp"
#include "fasda/util/log.hpp"

namespace fasda {
namespace {

// ----------------------------------------------------------- registry unit

TEST(ObsRegistry, RegistrationIsIdempotentPerKind) {
  obs::Registry r;
  const obs::Handle c = r.counter("a.metric");
  EXPECT_EQ(r.counter("a.metric"), c);
  const obs::Handle g = r.gauge("a.gauge");
  EXPECT_EQ(r.gauge("a.gauge"), g);
  const obs::Handle h = r.histogram("a.hist");
  EXPECT_EQ(r.histogram("a.hist"), h);
  // Same name under a different kind is a programming error, not a silent
  // aliasing of someone else's slot.
  EXPECT_THROW(r.gauge("a.metric"), std::invalid_argument);
  EXPECT_THROW(r.counter("a.gauge"), std::invalid_argument);
  EXPECT_THROW(r.counter("a.hist"), std::invalid_argument);
}

TEST(ObsRegistry, CountersShardAndMerge) {
  obs::Registry r;
  r.ensure_nodes(4);
  const obs::Handle h = r.counter("pkts");
  r.add(0, h, 3);
  r.add(2, h, 5);
  r.add(obs::kClusterNode, h, 7);
  const obs::MetricsSnapshot snap = r.snapshot();
  EXPECT_EQ(snap.counter_total("pkts"), 15u);
  EXPECT_EQ(snap.counter("pkts", 0), 3u);
  EXPECT_EQ(snap.counter("pkts", 1), 0u);
  EXPECT_EQ(snap.counter("pkts", 2), 5u);
  EXPECT_EQ(snap.counter_total("absent"), 0u);
}

TEST(ObsRegistry, HistogramBucketsByBitWidth) {
  obs::Registry r;
  r.ensure_nodes(2);
  const obs::Handle h = r.histogram("lat");
  r.observe(0, h, 0);   // bucket 0
  r.observe(0, h, 1);   // bucket 1
  r.observe(1, h, 2);   // bucket 2
  r.observe(1, h, 3);   // bucket 2
  r.observe(1, h, 1000);  // bit_width(1000) = 10
  const obs::MetricsSnapshot snap = r.snapshot();
  const auto* s = snap.find("lat");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->buckets.size(), static_cast<std::size_t>(obs::kHistogramBuckets));
  EXPECT_EQ(s->buckets[0], 1u);
  EXPECT_EQ(s->buckets[1], 1u);
  EXPECT_EQ(s->buckets[2], 2u);
  EXPECT_EQ(s->buckets[10], 1u);
  EXPECT_EQ(s->bucket_count(), 5u);
}

TEST(ObsSnapshot, MergeAddsCountersAndBucketsGaugesOverwrite) {
  obs::Registry a;
  a.ensure_nodes(2);
  a.add(0, a.counter("c"), 2);
  a.set(obs::kClusterNode, a.gauge("g"), 1.5);
  a.observe(0, a.histogram("h"), 4);  // bucket 3

  obs::Registry b;
  b.ensure_nodes(2);
  b.add(1, b.counter("c"), 5);
  b.set(obs::kClusterNode, b.gauge("g"), 2.5);
  b.observe(1, b.histogram("h"), 4);
  b.add(0, b.counter("only_b"), 1);

  obs::MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.counter_total("c"), 7u);
  EXPECT_EQ(merged.counter("c", 0), 2u);
  EXPECT_EQ(merged.counter("c", 1), 5u);
  EXPECT_EQ(merged.counter_total("only_b"), 1u);
  EXPECT_DOUBLE_EQ(merged.gauge_or("g"), 2.5);
  const auto* h = merged.find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->buckets[3], 2u);
}

TEST(ObsSnapshot, ExportsBothFormats) {
  obs::Registry r;
  r.ensure_nodes(1);
  r.add(0, r.counter("net.pkts"), 9);
  r.set(obs::kClusterNode, r.gauge("sim.rate"), 0.125);
  const obs::MetricsSnapshot snap = r.snapshot();
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"net.pkts\""), std::string::npos);
  EXPECT_NE(json.find("\"total\":9"), std::string::npos);
  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("fasda_net_pkts"), std::string::npos);
  EXPECT_NE(prom.find("fasda_sim_rate 0.125"), std::string::npos);
}

TEST(ObsSnapshot, PrometheusEmitsHelpAndType) {
  obs::Registry r;
  r.ensure_nodes(1);
  r.add(0, r.counter("net.pkts", "packets on the wire"), 1);
  r.set(obs::kClusterNode, r.gauge("sim.rate"), 1.0);
  const std::string prom = r.snapshot().to_prometheus();
  // HELP precedes TYPE per family; explicit help text is used verbatim,
  // and a help-less metric documents at least its dotted origin name.
  EXPECT_NE(prom.find("# HELP fasda_net_pkts packets on the wire\n"
                      "# TYPE fasda_net_pkts counter\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# HELP fasda_sim_rate sim.rate\n"
                      "# TYPE fasda_sim_rate gauge\n"),
            std::string::npos);
  // First non-empty help wins; re-registration cannot blank it.
  r.counter("net.pkts");
  EXPECT_NE(r.snapshot().to_prometheus().find("packets on the wire"),
            std::string::npos);
}

TEST(ObsSnapshot, PrometheusHistogramNativeExposition) {
  obs::Registry r;
  r.ensure_nodes(1);
  const obs::Handle h = r.histogram("lat.us", "request latency");
  r.observe(0, h, 0);     // bucket 0 (le 0)
  r.observe(0, h, 1);     // bucket 1 (le 1)
  r.observe(0, h, 3);     // bucket 2 (le 3)
  r.observe(0, h, 1000);  // bucket 10 (le 1023)
  const std::string prom = r.snapshot().to_prometheus();
  EXPECT_NE(prom.find("# TYPE fasda_lat_us histogram"), std::string::npos);
  // Cumulative le buckets: upper bound of bit-width bucket k is 2^k - 1.
  EXPECT_NE(prom.find("fasda_lat_us_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("fasda_lat_us_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("fasda_lat_us_bucket{le=\"3\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("fasda_lat_us_bucket{le=\"1023\"} 4\n"),
            std::string::npos);
  EXPECT_NE(prom.find("fasda_lat_us_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  // Native _sum/_count: the exact observed total, not a bucket estimate.
  EXPECT_NE(prom.find("fasda_lat_us_sum 1004\n"), std::string::npos);
  EXPECT_NE(prom.find("fasda_lat_us_count 4\n"), std::string::npos);
}

TEST(ObsSnapshot, HistogramSumMergesAndSurvivesImageFold) {
  obs::Registry a;
  a.ensure_nodes(2);
  const obs::Handle ha = a.histogram("h");
  a.observe(0, ha, 100);
  a.observe(1, ha, 23);

  // merge() adds sums (u64 wraparound, order-independent).
  obs::Registry b;
  b.ensure_nodes(2);
  b.observe(0, b.histogram("h"), 7);
  obs::MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  ASSERT_NE(merged.find("h"), nullptr);
  EXPECT_EQ(merged.find("h")->sum, 130u);

  // The proc-shard fold path (DESIGN.md §14): a NodeImage round trip must
  // transport the per-node sums, not just the bucket counts.
  obs::Registry c;
  c.ensure_nodes(2);
  c.histogram("h");
  c.apply_image(a.image_nodes(0, 2));
  const obs::MetricsSnapshot folded = c.snapshot();
  ASSERT_NE(folded.find("h"), nullptr);
  EXPECT_EQ(folded.find("h")->sum, 123u);
  EXPECT_EQ(folded.find("h")->bucket_count(), 2u);
}

// ------------------------------------------- wall-clock serve plane (§17)

TEST(ServerStats, TenantCountersAndDisableGate) {
  obs::ServerStats stats;
  stats.add(stats.jobs_submitted, 2);
  stats.observe(stats.queue_wait_us, 1000);
  stats.tenant_add("acme", "submitted");
  stats.tenant_add("acme", "submitted");
  stats.tenant_add("acme", "bytes_in", 512);
  obs::MetricsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.counter_total("serve.jobs.submitted"), 2u);
  EXPECT_EQ(snap.counter_total("serve.tenant.acme.submitted"), 2u);
  EXPECT_EQ(snap.counter_total("serve.tenant.acme.bytes_in"), 512u);
  ASSERT_NE(snap.find("serve.latency.queue_wait_us"), nullptr);
  EXPECT_EQ(snap.find("serve.latency.queue_wait_us")->sum, 1000u);

  // Disabled stats drop emissions before the lock — the metrics-off
  // baseline the serve bench compares against.
  stats.set_enabled(false);
  stats.add(stats.jobs_submitted, 5);
  stats.tenant_add("acme", "submitted");
  snap = stats.snapshot();
  EXPECT_EQ(snap.counter_total("serve.jobs.submitted"), 2u);
  EXPECT_EQ(snap.counter_total("serve.tenant.acme.submitted"), 2u);
}

TEST(ServeTrace, ExportClosesOpenSpansAndKeepsSpanIds) {
  obs::ServeTrace trace;
  trace.begin(7, 12345, "job", "acme");
  trace.begin(7, 12345, "queued");
  trace.end(7, 12345, "queued");
  trace.begin(7, 12345, "execute");  // left open, as after a kill -9
  trace.instant(7, 12345, "checkpoint", 40, "step");
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"span\":12345"), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"acme\""), std::string::npos);
  EXPECT_NE(json.find("\"step\":40"), std::string::npos);
  // Export-time closure: B job + B execute are still open, so the export
  // appends synthetic E events — every B has a matching E.
  std::size_t begins = 0, ends = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos) {
    ++begins;
    ++pos;
  }
  pos = 0;
  while ((pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos) {
    ++ends;
    ++pos;
  }
  EXPECT_EQ(begins, 3u);
  EXPECT_EQ(ends, begins);
  // The export is a snapshot: the recorder still holds the open spans.
  EXPECT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(ServeTrace, WallMicrosIsMonotone) {
  const std::uint64_t a = obs::wall_micros();
  const std::uint64_t b = obs::wall_micros();
  EXPECT_GE(b, a);
  // Sanity: rebased to the realtime epoch (after 2020, before 2100).
  EXPECT_GT(a, 1577836800ull * 1000000ull);
  EXPECT_LT(a, 4102444800ull * 1000000ull);
}

// ---------------------------------------------------------- trace bus unit

TEST(ObsTrace, SpansBalanceAndSortCanonically) {
  obs::TraceBus bus;
  bus.ensure_nodes(2);
  bus.begin(0, 0, obs::Comp::kFsm, "force", 10);
  bus.instant(1, 1, obs::Comp::kSync, "last-pos", 11);
  bus.end(0, 0, obs::Comp::kFsm, 20);
  const auto events = bus.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[0].ts, 10u);
  EXPECT_EQ(events[1].phase, 'i');
  EXPECT_EQ(events[2].phase, 'E');
  // Still-open spans are closed at the high-water mark by export.
  bus.begin(0, 0, obs::Comp::kFsm, "mu", 25);
  const auto closed = bus.events();
  ASSERT_EQ(closed.size(), 5u);
  EXPECT_EQ(closed.back().phase, 'E');
  EXPECT_EQ(closed.back().ts, 25u);
}

TEST(ObsTrace, EpochRebasingKeepsTimestampsMonotone) {
  obs::TraceBus bus;
  bus.ensure_nodes(1);
  bus.begin(0, 0, obs::Comp::kFsm, "force", 100);
  // The attempt crashes: the span never sees its 'E'. A new epoch closes it
  // and re-bases, so the next attempt's cycle 0 stamps after everything.
  bus.begin_epoch();
  bus.instant(0, 0, obs::Comp::kFsm, "restarted", 0);
  const auto events = bus.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'E');   // synthesized close at high water
  EXPECT_EQ(events[2].phase, 'i');
  EXPECT_GT(events[2].ts, events[1].ts);
  EXPECT_EQ(events[2].cycle, 0u);  // the raw stamp survives re-basing
}

TEST(ObsTrace, ChromeJsonCarriesTrackMetadata) {
  obs::TraceBus bus;
  bus.ensure_nodes(1);
  bus.instant(obs::kClusterShard, obs::kClusterPid, obs::Comp::kScheduler,
              "tick", 1);
  bus.instant(0, 0, obs::Comp::kFsm, "phase", 2, "arg", 42);
  const std::string json = bus.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cluster\""), std::string::npos);
  EXPECT_NE(json.find("\"node0\""), std::string::npos);
  EXPECT_NE(json.find("\"arg\":42"), std::string::npos);
}

// --------------------------------------------------------- log sink capture

TEST(ObsLog, SinkCapturesFormattedLines) {
  std::vector<std::pair<util::LogLevel, std::string>> lines;
  util::set_log_sink([&](util::LogLevel level, std::string_view line) {
    lines.emplace_back(level, std::string(line));
  });
  const util::LogLevel before = util::log_level();
  util::set_log_level(util::LogLevel::kInfo);
  util::log(util::LogLevel::kDebug, "dropped %d", 1);
  util::log(util::LogLevel::kInfo, "kept %d of %d", 2, 3);
  util::set_log_level(before);
  util::set_log_sink({});  // restore stderr
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].first, util::LogLevel::kInfo);
  EXPECT_EQ(lines[0].second, "kept 2 of 3");
}

TEST(ObsLog, ParseLogLevelRoundTrips) {
  EXPECT_EQ(util::parse_log_level("debug"), util::LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("info"), util::LogLevel::kInfo);
  EXPECT_EQ(util::parse_log_level("warn"), util::LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("error"), util::LogLevel::kError);
  EXPECT_EQ(util::parse_log_level("off"), util::LogLevel::kOff);
  EXPECT_THROW(util::parse_log_level("verbose"), std::invalid_argument);
  EXPECT_STREQ(util::log_level_name(util::LogLevel::kWarn), "WARN");
}

// ------------------------------------------- whole-cluster determinism

// Same cluster and plan as the fault-injection acceptance suite: 4x4x4
// cells on 2x2x2 FPGA nodes, every fault class armed.
md::SystemState cluster_state() {
  md::DatasetParams p;
  p.particles_per_cell = 8;
  p.seed = 17;
  p.temperature = 300.0;
  return md::generate_dataset({4, 4, 4}, 8.5, md::ForceField::sodium(), p);
}

core::ClusterConfig cluster_config(int workers, obs::Hub* hub) {
  core::ClusterConfig c;
  c.node_dims = {2, 2, 2};
  c.cells_per_node = {2, 2, 2};
  c.num_worker_threads = workers;
  c.obs = hub;
  return c;
}

net::FaultPlan acceptance_plan() {
  net::FaultPlan plan;
  plan.seed = 0xFA57;
  plan.all = {.drop = 0.1, .dup = 0.05, .reorder = 0.05, .corrupt = 0.05};
  return plan;
}

constexpr int kSteps = 3;

/// The structural checks tools/validate_trace.py applies in CI: per
/// (pid, tid) track, 'B'/'E' must balance like a stack and timestamps must
/// never go backwards.
void expect_trace_valid(const std::vector<obs::TraceEvent>& events) {
  std::map<std::pair<int, int>, int> depth;
  std::map<std::pair<int, int>, obs::Cycle> last_ts;
  for (const obs::TraceEvent& e : events) {
    const std::pair<int, int> track{e.pid, static_cast<int>(e.tid)};
    const auto it = last_ts.find(track);
    if (it != last_ts.end()) {
      EXPECT_GE(e.ts, it->second)
          << "ts regressed on track pid=" << track.first
          << " tid=" << track.second;
    }
    last_ts[track] = e.ts;
    if (e.phase == 'B') ++depth[track];
    if (e.phase == 'E') {
      ASSERT_GT(depth[track], 0) << "unmatched 'E' on pid=" << track.first;
      --depth[track];
    }
  }
  for (const auto& [track, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed span on pid=" << track.first;
  }
}

TEST(ObsCluster, FaultedRunTelemetryBitwiseIdenticalAcrossWorkers) {
  std::string want_trace, want_json, want_prom;
  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    obs::Hub hub;
    auto config = cluster_config(workers, &hub);
    config.faults = acceptance_plan();
    core::Simulation sim(cluster_state(), md::ForceField::sodium(), config);
    sim.run(kSteps);

    const obs::MetricsSnapshot snap = hub.metrics().snapshot();
    const std::string trace = hub.trace().to_chrome_json();
    const std::string json = snap.to_json();
    const std::string prom = snap.to_prometheus();

    // Telemetry proves the faults actually happened...
    EXPECT_GT(snap.counter_total("net.pos.faults.drop"), 0u);
    EXPECT_GT(snap.counter_total("net.pos.retransmit_packets"), 0u);
    EXPECT_EQ(snap.counter_total("node.iterations"),
              static_cast<std::uint64_t>(kSteps) * 8u);
    // ...the trace is structurally sound...
    expect_trace_valid(hub.trace().events());
    // ...and none of it depends on the worker count.
    if (workers == 1) {
      want_trace = trace;
      want_json = json;
      want_prom = prom;
      continue;
    }
    EXPECT_EQ(trace, want_trace);
    EXPECT_EQ(json, want_json);
    EXPECT_EQ(prom, want_prom);
  }
}

// The registry is not a second bookkeeping system: what it publishes is
// exactly what the direct report accessors return.
TEST(ObsCluster, RegistryMatchesDirectReports) {
  obs::Hub hub;
  auto config = cluster_config(2, &hub);
  config.faults = acceptance_plan();
  core::Simulation sim(cluster_state(), md::ForceField::sodium(), config);
  sim.run(kSteps);

  const obs::MetricsSnapshot snap = hub.metrics().snapshot();
  const auto u = sim.utilization();
  EXPECT_EQ(snap.gauge_or("util.pe.hardware"), u.pe_hardware);
  EXPECT_EQ(snap.gauge_or("util.pe.time"), u.pe_time);
  EXPECT_EQ(snap.gauge_or("util.mu.time"), u.mu_time);
  const auto t = sim.traffic();
  EXPECT_EQ(snap.gauge_or("net.pos.gbps_per_node"), t.position_gbps_per_node);
  EXPECT_EQ(snap.gauge_or("net.frc.gbps_per_node"), t.force_gbps_per_node);
  EXPECT_EQ(snap.counter_total("net.pos.packets"),
            t.positions.total_packets);
  EXPECT_EQ(snap.counter_total("net.frc.packets"), t.forces.total_packets);
  EXPECT_EQ(snap.counter_total("net.rel.retransmits"),
            t.reliability_total.retransmits);

  // The per-destination egress counters reproduce the Fig. 18 breakdown.
  std::uint64_t from0 = 0;
  for (const auto& [pair, packets] : t.positions.packets) {
    if (pair.first == 0) from0 += packets;
  }
  const auto pct = obs::egress_percentages(snap, "net.pos", 0, sim.num_nodes());
  std::uint64_t counted = 0;
  for (int dst = 0; dst < sim.num_nodes(); ++dst) {
    counted += snap.counter("net.pos.to." + std::to_string(dst), 0);
  }
  EXPECT_EQ(counted, from0);
  double sum = 0;
  for (double p : pct) sum += p;
  EXPECT_NEAR(sum, from0 > 0 ? 100.0 : 0.0, 1e-9);
}

// A disabled hub is the default; nothing registers, nothing allocates.
TEST(ObsCluster, NullHubRunsClean) {
  auto config = cluster_config(2, nullptr);
  core::Simulation sim(cluster_state(), md::ForceField::sodium(), config);
  sim.run(1);
  EXPECT_EQ(sim.obs(), nullptr);
}

}  // namespace
}  // namespace fasda
