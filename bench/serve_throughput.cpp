// serve_throughput — sustained job throughput of the fasda_serve daemon
// core (DESIGN.md §15), measured end to end over real loopback sockets.
//
// An in-process Server is loaded by N client threads, each submitting M
// jobs of R ensemble replicas (N*M*R queued replicas total; the default
// 4 x 64 x 8 = 2048 comfortably exceeds the 1000-replica floor the
// acceptance bar asks for). Clients submit everything up front — the
// queue capacity is sized to hold the full backlog, so the measurement is
// the drain rate of the admission/queue/executor pipeline, not client
// pacing. Results are printed as JSON and optionally written to --out
// (BENCH_serve.json at the repo root is a committed snapshot).
//
// Usage:
//   serve_throughput [--clients 4] [--jobs 64] [--replicas 8] [--steps 2]
//                    [--queue-workers 2] [--out FILE] [--date YYYY-MM-DD]
//                    [--state-dir DIR] [--journal-fsync always|never]
//                    [--obs]
//
// --state-dir turns on the write-ahead journal (DESIGN.md §16) so the
// bench doubles as a measurement of the durability tax: every admission
// and completion appends (and, with --journal-fsync always, fsyncs) a
// journal record on the submit/complete path. Compare runs with no state
// dir, --journal-fsync never, and --journal-fsync always to price the
// exactly-once guarantee.
//
// --obs prices the wall-clock observability plane (DESIGN.md §17): the
// identical workload runs twice in one process — first with wall_obs off
// (no ServerStats emissions, no spans), then with the full plane on — and
// the JSON reports both rates plus the overhead percentage
// (BENCH_serve_obs.json is the committed snapshot; the acceptance bar is
// <= 5% on jobs/s).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "fasda/obs/obs.hpp"
#include "fasda/serve/client.hpp"
#include "fasda/serve/server.hpp"
#include "fasda/util/cli.hpp"
#include "fasda/util/stopwatch.hpp"

using namespace fasda;

namespace {

struct RunStats {
  int ok = 0;
  int failed = 0;
  double seconds = 0.0;
  std::uint64_t trace_events = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const int clients = static_cast<int>(cli.get_or("clients", 4L));
  const int jobs = static_cast<int>(cli.get_or("jobs", 64L));
  const int replicas = static_cast<int>(cli.get_or("replicas", 8L));
  const int steps = static_cast<int>(cli.get_or("steps", 2L));
  const std::size_t queue_workers =
      static_cast<std::size_t>(cli.get_or("queue-workers", 2L));
  const std::string out_path = cli.get_or("out", "");
  const std::string date = cli.get_or("date", "unknown");
  const std::string state_dir = cli.get_or("state-dir", "");
  const std::string fsync_policy = cli.get_or("journal-fsync", "always");
  const bool obs_mode = cli.has("obs");
  if (fsync_policy != "always" && fsync_policy != "never") {
    std::fprintf(stderr, "bench: --journal-fsync must be always|never\n");
    return 2;
  }

  const auto run_once = [&](bool wall_obs) -> RunStats {
    serve::ServerConfig config;
    config.queue_workers = queue_workers;
    config.queue.capacity = static_cast<std::size_t>(clients) *
                                static_cast<std::size_t>(jobs) +
                            16;
    config.state_dir = state_dir;
    config.journal_fsync = fsync_policy == "never"
                               ? serve::JournalFsync::kNever
                               : serve::JournalFsync::kAlways;
    config.wall_obs = wall_obs;
    serve::Server server(config);
    server.start();
    while (server.recovering()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    std::atomic<int> ok{0};
    std::atomic<int> failed{0};
    util::Stopwatch wall;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        try {
          serve::Client client("127.0.0.1", server.port());
          // Submit the whole backlog first so the queue really holds
          // clients*jobs entries, then collect results in submit order.
          std::vector<std::uint64_t> ids;
          ids.reserve(static_cast<std::size_t>(jobs));
          for (int j = 0; j < jobs; ++j) {
            serve::JobRequest req;
            req.tenant = "bench" + std::to_string(c);
            req.replicas = replicas;
            req.steps = steps;
            req.space = "333";
            req.per_cell = 4;
            req.seed = 0x5eed + static_cast<std::uint64_t>(c * jobs + j);
            req.batch_workers = 1;
            const auto reply = client.submit(req);
            if (!reply.accepted) {
              std::fprintf(stderr, "bench: rejected: %s\n",
                           reply.reason.c_str());
              failed.fetch_add(1);
              continue;
            }
            ids.push_back(reply.job_id);
          }
          for (const std::uint64_t id : ids) {
            const serve::JobResult result = client.wait_result(id);
            if (result.outcome == serve::JobOutcome::kOk) {
              ok.fetch_add(1);
            } else {
              failed.fetch_add(1);
            }
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "bench: client %d: %s\n", c, e.what());
          failed.fetch_add(1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    RunStats stats;
    stats.seconds = wall.seconds();
    stats.trace_events = server.wall_trace().size();
    server.drain_and_stop();
    stats.ok = ok.load();
    stats.failed = failed.load();
    return stats;
  };

  const int total = clients * jobs;
  char json[4096];

  if (!obs_mode) {
    const RunStats r = run_once(true);
    std::snprintf(
        json, sizeof json,
        "{\n"
        "  \"benchmark\": \"fasda_serve sustained job throughput over "
        "loopback TCP (DESIGN.md \\u00a715)\",\n"
        "  \"date\": \"%s\",\n"
        "  \"command\": \"./build/bench/serve_throughput --clients %d "
        "--jobs %d --replicas %d --steps %d --queue-workers %zu\",\n"
        "  \"host\": {\n"
        "    \"hardware_concurrency\": %u\n"
        "  },\n"
        "  \"results\": {\n"
        "    \"journal\": \"%s\",\n"
        "    \"jobs\": %d,\n"
        "    \"jobs_ok\": %d,\n"
        "    \"jobs_failed\": %d,\n"
        "    \"queued_ensemble_replicas\": %d,\n"
        "    \"wall_seconds\": %.3f,\n"
        "    \"jobs_per_second\": %.2f,\n"
        "    \"replicas_per_second\": %.2f\n"
        "  }\n"
        "}\n",
        date.c_str(), clients, jobs, replicas, steps, queue_workers,
        std::thread::hardware_concurrency(),
        state_dir.empty() ? "off" : fsync_policy.c_str(), total, r.ok,
        r.failed, total * replicas, r.seconds,
        r.seconds > 0 ? total / r.seconds : 0.0,
        r.seconds > 0 ? total * replicas / r.seconds : 0.0);
    std::fputs(json, stdout);
    if (!out_path.empty() && !obs::write_text_file(out_path, json)) {
      std::fprintf(stderr, "bench: failed to write %s\n", out_path.c_str());
      return 1;
    }
    return r.failed == 0 ? 0 : 1;
  }

  // --obs: identical workload, observability off then on. Off first so the
  // on-run cannot benefit from page-cache warmup the off-run paid for (any
  // warmup bias thus inflates, not hides, the reported overhead).
  const RunStats off = run_once(false);
  const RunStats on = run_once(true);
  const double jps_off = off.seconds > 0 ? total / off.seconds : 0.0;
  const double jps_on = on.seconds > 0 ? total / on.seconds : 0.0;
  const double overhead_pct =
      jps_off > 0 ? (jps_off - jps_on) / jps_off * 100.0 : 0.0;
  std::snprintf(
      json, sizeof json,
      "{\n"
      "  \"benchmark\": \"fasda_serve wall-clock observability overhead "
      "(DESIGN.md \\u00a717)\",\n"
      "  \"date\": \"%s\",\n"
      "  \"command\": \"./build/bench/serve_throughput --obs --clients %d "
      "--jobs %d --replicas %d --steps %d --queue-workers %zu\",\n"
      "  \"host\": {\n"
      "    \"hardware_concurrency\": %u\n"
      "  },\n"
      "  \"results\": {\n"
      "    \"journal\": \"%s\",\n"
      "    \"jobs\": %d,\n"
      "    \"metrics_off\": {\n"
      "      \"jobs_ok\": %d,\n"
      "      \"jobs_failed\": %d,\n"
      "      \"wall_seconds\": %.3f,\n"
      "      \"jobs_per_second\": %.2f\n"
      "    },\n"
      "    \"metrics_on\": {\n"
      "      \"jobs_ok\": %d,\n"
      "      \"jobs_failed\": %d,\n"
      "      \"wall_seconds\": %.3f,\n"
      "      \"jobs_per_second\": %.2f,\n"
      "      \"trace_events\": %llu\n"
      "    },\n"
      "    \"overhead_percent\": %.2f,\n"
      "    \"acceptance_max_percent\": 5.0\n"
      "  }\n"
      "}\n",
      date.c_str(), clients, jobs, replicas, steps, queue_workers,
      std::thread::hardware_concurrency(),
      state_dir.empty() ? "off" : fsync_policy.c_str(), total, off.ok,
      off.failed, off.seconds, jps_off, on.ok, on.failed, on.seconds, jps_on,
      static_cast<unsigned long long>(on.trace_events), overhead_pct);
  std::fputs(json, stdout);
  if (!out_path.empty() && !obs::write_text_file(out_path, json)) {
    std::fprintf(stderr, "bench: failed to write %s\n", out_path.c_str());
    return 1;
  }
  return off.failed == 0 && on.failed == 0 ? 0 : 1;
}
