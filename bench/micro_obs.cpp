// Google-benchmark microbenchmarks for the obs telemetry layer
// (DESIGN.md §12). Two questions:
//
//   1. Raw primitive cost: counter add, gauge set, histogram observe,
//      trace instant, and a full snapshot — what a hot-path emission
//      actually pays when telemetry is on.
//   2. End-to-end overhead: the same small cluster stepped with the hub
//      detached (the null-pointer fast path) versus attached. The
//      disabled-path delta is the number the "< 2% cycle-loop overhead"
//      claim rests on; compare BM_CycleLoop/0 against a build without the
//      obs hooks to audit it.

#include <benchmark/benchmark.h>

#include "fasda/core/simulation.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/obs/obs.hpp"

namespace {

using namespace fasda;

void BM_CounterAdd(benchmark::State& state) {
  obs::Hub hub;
  hub.attach_cluster(8);
  const obs::Handle h = hub.metrics().counter("bench.counter");
  int node = 0;
  for (auto _ : state) {
    hub.metrics().add(node, h);
    node = (node + 1) & 7;
  }
  benchmark::DoNotOptimize(hub.metrics().counter_value(0, h));
}
BENCHMARK(BM_CounterAdd);

void BM_GaugeSet(benchmark::State& state) {
  obs::Hub hub;
  hub.attach_cluster(8);
  const obs::Handle h = hub.metrics().gauge("bench.gauge");
  double v = 0.0;
  for (auto _ : state) {
    hub.metrics().set(obs::kClusterNode, h, v);
    v += 1.0;
  }
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Hub hub;
  hub.attach_cluster(8);
  const obs::Handle h = hub.metrics().histogram("bench.hist");
  std::uint64_t v = 1;
  for (auto _ : state) {
    hub.metrics().observe(0, h, v);
    v = v * 2 + 1;
    if (v > (1ULL << 40)) v = 1;
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_TraceInstant(benchmark::State& state) {
  obs::Hub hub;
  hub.attach_cluster(8);
  obs::Cycle cycle = 0;
  for (auto _ : state) {
    hub.trace().instant(0, 0, obs::Comp::kSync, "bench", cycle++);
  }
  benchmark::DoNotOptimize(hub.trace().empty());
}
BENCHMARK(BM_TraceInstant);

void BM_Snapshot(benchmark::State& state) {
  obs::Hub hub;
  hub.attach_cluster(8);
  for (int i = 0; i < 64; ++i) {
    const obs::Handle h =
        hub.metrics().counter("bench.c" + std::to_string(i));
    for (int node = 0; node < 8; ++node) hub.metrics().add(node, h, 3);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hub.metrics().snapshot());
  }
}
BENCHMARK(BM_Snapshot);

/// Whole-machine check: a 2x2x2-node cluster stepping real MD, with the
/// hub detached (arg 0, the null fast path) or attached (arg 1). Telemetry
/// must not show up in arg 0 at all, and stays small in arg 1.
void BM_CycleLoop(benchmark::State& state) {
  const geom::IVec3 cells{4, 4, 4};
  md::DatasetParams params;
  params.particles_per_cell = 8;
  params.seed = 17;
  const md::ForceField ff = md::ForceField::sodium();
  const md::SystemState initial = md::generate_dataset(cells, 8.5, ff, params);

  for (auto _ : state) {
    obs::Hub hub;
    core::ClusterConfig config;
    config.node_dims = {2, 2, 2};
    config.cells_per_node = {2, 2, 2};
    config.num_worker_threads = 1;
    config.obs = state.range(0) != 0 ? &hub : nullptr;
    core::Simulation sim(initial, ff, config);
    sim.run(1);
    benchmark::DoNotOptimize(sim.total_cycles());
  }
}
BENCHMARK(BM_CycleLoop)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
