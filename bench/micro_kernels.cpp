// Google-benchmark microbenchmarks for FASDA's numeric kernels: the
// section/bin interpolation lookup (Eq. 8-10), fixed-point r² (the filter
// datapath), the full pair-force evaluation (Fig. 6), and whole-engine
// timestep throughput for the reference and functional engines.

#include <benchmark/benchmark.h>

#include "fasda/fixed/fixed_point.hpp"
#include "fasda/interp/interp_table.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/md/functional_engine.hpp"
#include "fasda/md/reference_engine.hpp"
#include "fasda/pe/force_model.hpp"
#include "fasda/util/rng.hpp"

namespace {

using namespace fasda;

void BM_InterpEval(benchmark::State& state) {
  const auto table = interp::InterpTable::build_r_pow(
      14, interp::InterpConfig{14, static_cast<int>(state.range(0))});
  util::Xoshiro256 rng(1);
  std::vector<float> inputs(4096);
  for (auto& x : inputs) x = static_cast<float>(rng.uniform(1e-3, 1.0));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.eval(inputs[i++ & 4095]));
  }
}
BENCHMARK(BM_InterpEval)->Arg(64)->Arg(256)->Arg(1024);

void BM_FixedR2(benchmark::State& state) {
  util::Xoshiro256 rng(2);
  std::vector<fixed::FixedVec3> pts(1024);
  for (auto& p : pts) {
    p = {fixed::FixedCoord::from_real(rng.uniform(1.0, 4.0)),
         fixed::FixedCoord::from_real(rng.uniform(1.0, 4.0)),
         fixed::FixedCoord::from_real(rng.uniform(1.0, 4.0))};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixed::r2_fixed(pts[i & 1023], pts[(i + 7) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_FixedR2);

void BM_PairForce(benchmark::State& state) {
  const pe::ForceModel model(md::ForceField::sodium(), 8.5,
                             interp::InterpConfig{});
  util::Xoshiro256 rng(3);
  std::vector<fixed::FixedVec3> pts(1024);
  for (auto& p : pts) {
    p = {fixed::FixedCoord::from_real(rng.uniform(1.8, 2.2)),
         fixed::FixedCoord::from_real(rng.uniform(1.8, 2.2)),
         fixed::FixedCoord::from_real(rng.uniform(1.8, 2.2))};
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.pair_force(pts[i & 1023], 0, pts[(i + 13) & 1023], 0));
    ++i;
  }
}
BENCHMARK(BM_PairForce);

void BM_ReferenceEngineStep(benchmark::State& state) {
  md::DatasetParams params;
  params.particles_per_cell = 64;
  const auto sys =
      md::generate_dataset({3, 3, 3}, 8.5, md::ForceField::sodium(), params);
  md::ReferenceEngine engine(sys, md::ForceField::sodium(), 8.5, 2.0,
                             static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) engine.step(1);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sys.size()));
}
BENCHMARK(BM_ReferenceEngineStep)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_FunctionalEngineStep(benchmark::State& state) {
  md::DatasetParams params;
  params.particles_per_cell = 64;
  const auto sys =
      md::generate_dataset({3, 3, 3}, 8.5, md::ForceField::sodium(), params);
  md::FunctionalConfig config;
  config.cutoff = 8.5;
  config.dt = 2.0;
  config.threads = static_cast<std::size_t>(state.range(0));
  md::FunctionalEngine engine(sys, md::ForceField::sodium(), config);
  for (auto _ : state) engine.step(1);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sys.size()));
}
BENCHMARK(BM_FunctionalEngineStep)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
