// Ablation of the §4.4 synchronization design: chained versus bulk
// synchronization on a 4-FPGA chain (12x3x3 space), with and without an
// injected straggler board. Chained sync decouples the nodes distant from
// the straggler — they start the next iteration early — while bulk sync
// couples every node to the slowest one plus the barrier release latency.
//
// Flags:
//   --iters N        timesteps (default 3)
//   --slowdown K     straggler factor for node 0 (default 2)
//   --barrier N      bulk barrier release latency in cycles (default 2000,
//                    a central-FPGA coordinator; a host round trip would be
//                    ~200000 cycles = 1 ms)

#include "bench_common.hpp"

namespace {

using namespace fasda;

struct Result {
  double us_per_day;
  sim::Cycle spread;  ///< max - min force-phase start of the last iteration
};

Result run(sync::SyncMode mode, int slowdown, int iters, sim::Cycle barrier) {
  // A 4x1x1 node chain (Fig. 12's example): node 2 is not a neighbour of
  // node 0, so chained sync can give it a head start when node 0 lags.
  auto config = bench::weak_config({4, 1, 1});
  config.sync_mode = mode;
  config.bulk_barrier_latency = barrier;
  if (slowdown > 1) config.stragglers.push_back({0, slowdown});
  const auto state = bench::standard_dataset({12, 3, 3});
  core::Simulation sim(state, md::ForceField::sodium(), config);
  sim.run(iters);
  sim::Cycle min_start = ~0ull, max_start = 0;
  for (int n = 0; n < sim.num_nodes(); ++n) {
    const auto& starts = sim.force_phase_starts(n);
    min_start = std::min(min_start, starts.back());
    max_start = std::max(max_start, starts.back());
  }
  return {sim.microseconds_per_day(), max_start - min_start};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);
  const int iters = static_cast<int>(cli.get_or("iters", 3L));
  const int slowdown = static_cast<int>(cli.get_or("slowdown", 2L));
  const auto barrier = static_cast<sim::Cycle>(cli.get_or("barrier", 2000L));

  bench::print_header(
      "Ablation -- chained vs bulk synchronization (12x3x3, 4-FPGA chain)");
  std::printf("%-34s %9s %18s\n", "configuration", "us/day", "phase-start spread");

  const Result chained = run(sync::SyncMode::kChained, 1, iters, barrier);
  const Result bulk = run(sync::SyncMode::kBulk, 1, iters, barrier);
  std::printf("%-34s %9.2f %15lu cyc\n", "chained, balanced", chained.us_per_day,
              static_cast<unsigned long>(chained.spread));
  std::printf("%-34s %9.2f %15lu cyc\n", "bulk, balanced", bulk.us_per_day,
              static_cast<unsigned long>(bulk.spread));

  const Result chained_s = run(sync::SyncMode::kChained, slowdown, iters, barrier);
  const Result bulk_s = run(sync::SyncMode::kBulk, slowdown, iters, barrier);
  std::printf("%-34s %9.2f %15lu cyc\n", "chained, node0 straggler",
              chained_s.us_per_day, static_cast<unsigned long>(chained_s.spread));
  std::printf("%-34s %9.2f %15lu cyc\n", "bulk, node0 straggler",
              bulk_s.us_per_day, static_cast<unsigned long>(bulk_s.spread));

  std::printf(
      "\nChained sync shows a nonzero phase-start spread under a straggler:\n"
      "nodes far from the slow board get a head start into the next\n"
      "iteration (Fig. 12), while bulk sync forces all starts together and\n"
      "pays the barrier latency every phase.\n");
  return 0;
}
