#pragma once
// Shared helpers for the paper-reproduction bench binaries: configuration
// builders for every design variant evaluated in §5 and a dataset factory
// matching §5.1 (64 random sodium atoms per cell, R_c = 8.5 Å, Δt = 2 fs).

#include <cstdio>
#include <string>

#include "fasda/core/simulation.hpp"
#include "fasda/md/dataset.hpp"
#include "fasda/util/cli.hpp"

namespace fasda::bench {

inline md::SystemState standard_dataset(geom::IVec3 cells, int per_cell = 64,
                                        std::uint64_t seed = 0x5eed) {
  md::DatasetParams params;
  params.particles_per_cell = per_cell;
  params.seed = seed;
  params.temperature = 300.0;
  return md::generate_dataset(cells, 8.5, md::ForceField::sodium(), params);
}

/// Weak-scaling variants: each FPGA owns 3x3x3 cells (Table 1 rows 1-4).
inline core::ClusterConfig weak_config(geom::IVec3 node_dims) {
  core::ClusterConfig config;
  config.node_dims = node_dims;
  config.cells_per_node = {3, 3, 3};
  return config;
}

/// Strong-scaling variants on the 4x4x4 space with 8 FPGAs of 2x2x2 cells:
/// A = 1 SPE x 1 PE, B = 1 SPE x 3 PE, C = 2 SPE x 3 PE (§5.2).
inline core::ClusterConfig strong_config(int pes_per_spe, int spes) {
  core::ClusterConfig config;
  config.node_dims = {2, 2, 2};
  config.cells_per_node = {2, 2, 2};
  config.pes_per_spe = pes_per_spe;
  config.spes = spes;
  return config;
}

/// The §5.2 right-panel simulated large clusters: every FPGA owns 2x2x2
/// cells in the strongest configuration.
inline core::ClusterConfig large_config(geom::IVec3 node_dims) {
  core::ClusterConfig config;
  config.node_dims = node_dims;
  config.cells_per_node = {2, 2, 2};
  config.pes_per_spe = 3;
  config.spes = 2;
  return config;
}

struct VariantRow {
  std::string name;
  core::ClusterConfig config;
  geom::IVec3 cells;
};

/// The seven design variants of Fig. 17 / Table 1, in paper order.
inline std::vector<VariantRow> table1_variants() {
  return {
      {"3x3x3", weak_config({1, 1, 1}), {3, 3, 3}},
      {"6x3x3", weak_config({2, 1, 1}), {6, 3, 3}},
      {"6x6x3", weak_config({2, 2, 1}), {6, 6, 3}},
      {"6x6x6", weak_config({2, 2, 2}), {6, 6, 6}},
      {"4x4x4-A", strong_config(1, 1), {4, 4, 4}},
      {"4x4x4-B", strong_config(3, 1), {4, 4, 4}},
      {"4x4x4-C", strong_config(3, 2), {4, 4, 4}},
  };
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace fasda::bench
