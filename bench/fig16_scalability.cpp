// Reproduces Figure 16: simulation rate (µs/day) of FPGAs (cycle-level
// FASDA simulation), CPUs and GPUs (documented analytic models; see
// DESIGN.md) across the paper's weak-scaling spaces (3x3x3 .. 6x6x6), the
// strong-scaling 4x4x4 variants A/B/C, and the right-panel large spaces
// (8x8x8 on 64 FPGAs, 10x10x10 on 125 FPGAs).
//
// Flags:
//   --iters N      cycle-simulated timesteps per configuration (default 2)
//   --large        include the 8x8x8 / 10x10x10 simulated panel (slow)
//   --measure      additionally run the in-repo double-precision CPU engine
//                  and report real wall-clock rates for this machine
//   --sync bulk    run the FPGA configs under bulk synchronization instead
//                  of chained (ablation)
//   --workers N    simulator worker threads per cycle run (0 = auto, 1 =
//                  serial scheduler); results are bitwise identical for any
//                  N, only the host wall-clock changes
//   --timing       report host wall-clock seconds per cycle run alongside
//                  the simulated rate (for scheduler speedup measurements)

#include "bench_common.hpp"
#include "fasda/md/reference_engine.hpp"
#include "fasda/model/perf_models.hpp"
#include "fasda/util/stopwatch.hpp"

namespace {

using namespace fasda;

int g_workers = 1;      // --workers: simulator threads per cycle run
bool g_timing = false;  // --timing: print host wall-clock per run
double g_last_wall_seconds = 0.0;

double fpga_rate(core::ClusterConfig config, geom::IVec3 cells, int iters) {
  config.num_worker_threads = g_workers;
  const auto state = bench::standard_dataset(cells);
  util::Stopwatch sw;
  core::Simulation sim(state, md::ForceField::sodium(), config);
  sim.run(iters);
  g_last_wall_seconds = sw.seconds();
  if (g_timing) {
    std::printf("  [%dx%dx%d cells, %d workers: %.3f s wall]\n", cells.x,
                cells.y, cells.z, sim.num_workers(), g_last_wall_seconds);
  }
  return sim.microseconds_per_day();
}

double measured_cpu_rate(geom::IVec3 cells, int threads, int steps) {
  const auto state = bench::standard_dataset(cells);
  md::ReferenceEngine engine(state, md::ForceField::sodium(), 8.5, 2.0,
                             static_cast<std::size_t>(threads));
  engine.step(1);  // warm up caches and the thread pool
  util::Stopwatch sw;
  engine.step(steps);
  return model::us_per_day_from_step_seconds(sw.seconds() / steps);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);
  const int iters = static_cast<int>(cli.get_or("iters", 2L));
  const bool large = cli.has("large");
  const bool measure = cli.has("measure");
  const bool bulk = cli.get_or("sync", "chained") == std::string("bulk");
  g_workers = static_cast<int>(cli.get_or("workers", 1L));
  g_timing = cli.has("timing");

  const model::GpuModel gpu;
  const model::CpuModel cpu;

  bench::print_header(
      "Figure 16 -- Scalability comparison (us/day, dt = 2 fs, 64 Na/cell)");
  if (bulk) std::printf("[ablation: bulk synchronization]\n");
  if (g_workers != 1) {
    std::printf("[parallel scheduler: --workers %d (0 = auto)]\n", g_workers);
  }

  std::printf("\n-- Weak scaling (3x3x3 cells per FPGA) --\n");
  std::printf("%-8s %8s | %9s %9s %9s | %8s %8s %8s\n", "space", "FPGAs",
              "FPGA", "1xA100", "2xA100", "CPU-1t", "CPU-4t", "CPU-16t");
  struct Weak {
    geom::IVec3 nodes;
    geom::IVec3 cells;
  };
  for (const Weak& w : {Weak{{1, 1, 1}, {3, 3, 3}}, Weak{{2, 1, 1}, {6, 3, 3}},
                        Weak{{2, 2, 1}, {6, 6, 3}}, Weak{{2, 2, 2}, {6, 6, 6}}}) {
    auto config = bench::weak_config(w.nodes);
    if (bulk) config.sync_mode = sync::SyncMode::kBulk;
    const double fpga = fpga_rate(config, w.cells, iters);
    const std::size_t n = static_cast<std::size_t>(w.cells.product()) * 64;
    std::printf("%dx%dx%d %8d | %9.2f %9.2f %9.2f | %8.3f %8.3f %8.3f\n",
                w.cells.x, w.cells.y, w.cells.z, w.nodes.product(), fpga,
                gpu.us_per_day(n, 1, model::GpuKind::kA100),
                gpu.us_per_day(n, 2, model::GpuKind::kA100),
                cpu.us_per_day(n, 1), cpu.us_per_day(n, 4),
                cpu.us_per_day(n, 16));
  }

  std::printf("\n-- Strong scaling (4x4x4 space, 8 FPGAs x 2x2x2 cells) --\n");
  std::printf("%-22s %9s\n", "configuration", "us/day");
  const std::size_t n444 = 64 * 64;
  double best_fpga = 0.0, rate_a = 0.0;
  for (const auto& [name, pes, spes] :
       {std::tuple{"4x4x4-A (1 SPE, 1 PE)", 1, 1},
        std::tuple{"4x4x4-B (1 SPE, 3 PE)", 3, 1},
        std::tuple{"4x4x4-C (2 SPE, 3 PE)", 3, 2}}) {
    auto config = bench::strong_config(pes, spes);
    if (bulk) config.sync_mode = sync::SyncMode::kBulk;
    const double rate = fpga_rate(config, {4, 4, 4}, iters);
    if (rate_a == 0.0) rate_a = rate;
    best_fpga = std::max(best_fpga, rate);
    std::printf("%-22s %9.2f\n", name, rate);
  }
  const double gpu1 = gpu.us_per_day(n444, 1, model::GpuKind::kA100);
  const double gpu2 = gpu.us_per_day(n444, 2, model::GpuKind::kA100);
  const double gpu4 = gpu.us_per_day(n444, 4, model::GpuKind::kV100);
  std::printf("%-22s %9.2f\n", "1x A100", gpu1);
  std::printf("%-22s %9.2f  (%+.0f%% vs 1 GPU)\n", "2x A100", gpu2,
              100.0 * (gpu2 / gpu1 - 1.0));
  std::printf("%-22s %9.2f  (%+.0f%% vs 1 GPU)\n", "4x V100", gpu4,
              100.0 * (gpu4 / gpu1 - 1.0));
  for (int t : {1, 2, 4, 8, 16, 32}) {
    std::printf("CPU %2d threads         %9.3f\n", t, cpu.us_per_day(n444, t));
  }
  std::printf("\nFPGA strong-scaling gain C vs A : %.2fx (paper: 5.26x)\n",
              best_fpga / rate_a);
  std::printf("FPGA best vs best GPU           : %.2fx (paper: 4.67x)\n",
              best_fpga / gpu1);

  if (large) {
    std::printf("\n-- Simulated large clusters (2x2x2 cells per FPGA) --\n");
    std::printf("%-10s %6s | %9s | %9s %9s\n", "space", "FPGAs", "FPGA",
                "1xA100", "2xA100");
    struct Large {
      geom::IVec3 nodes;
      geom::IVec3 cells;
    };
    for (const Large& l :
         {Large{{4, 4, 4}, {8, 8, 8}}, Large{{5, 5, 5}, {10, 10, 10}}}) {
      auto config = bench::large_config(l.nodes);
      if (bulk) config.sync_mode = sync::SyncMode::kBulk;
      const double fpga = fpga_rate(config, l.cells, std::max(1, iters / 2));
      const std::size_t n = static_cast<std::size_t>(l.cells.product()) * 64;
      std::printf("%dx%dx%d %8d | %9.2f | %9.2f %9.2f\n", l.cells.x, l.cells.y,
                  l.cells.z, l.nodes.product(), fpga,
                  gpu.us_per_day(n, 1, model::GpuKind::kA100),
                  gpu.us_per_day(n, 2, model::GpuKind::kA100));
    }
  }

  if (measure) {
    std::printf(
        "\n-- Measured CPU (in-repo double-precision engine, this machine) --\n");
    for (int t : {1, 2, 4}) {
      std::printf("3x3x3, %d threads: %.4f us/day\n", t,
                  measured_cpu_rate({3, 3, 3}, t, 5));
    }
  }
  return 0;
}
