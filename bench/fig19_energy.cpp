// Reproduces Figure 19: relative total-energy error of the FASDA numerics
// (fixed-point positions, float32 interpolated forces and accumulation)
// against a 64-bit double-precision simulation of the same system, on the
// 4x4x4 space. The paper runs 100,000 iterations and observes relative
// error always well under 1e-3 and generally below 1e-4.
//
// Flags:
//   --steps N       total timesteps (default 1000; --full = 100000)
//   --sample N      energy sampling period (default steps/20)
//   --bins N        ablation: interpolation bins per section (default 256)
//   --threads N     worker threads for both engines (default 2)

#include <algorithm>
#include <cmath>

#include "bench_common.hpp"
#include "fasda/md/energy.hpp"
#include "fasda/md/functional_engine.hpp"
#include "fasda/md/reference_engine.hpp"

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);
  int steps = static_cast<int>(cli.get_or("steps", 1000L));
  if (cli.has("full")) steps = 100000;
  const int sample = static_cast<int>(cli.get_or("sample", std::max(1L, steps / 20L)));
  const int bins = static_cast<int>(cli.get_or("bins", 256L));
  const auto threads = static_cast<std::size_t>(cli.get_or("threads", 2L));

  bench::print_header("Figure 19 -- Energy relative error w.r.t. double precision");
  std::printf("4x4x4 space, 4096 Na, dt = 2 fs, %d steps, %d bins/section\n\n",
              steps, bins);

  const auto ff = md::ForceField::sodium();
  const auto state = bench::standard_dataset({4, 4, 4});

  md::FunctionalConfig config;
  config.cutoff = 8.5;
  config.dt = 2.0;
  config.table.num_bins = bins;
  config.threads = threads;
  md::FunctionalEngine fasda_engine(state, ff, config);
  md::ReferenceEngine reference(state, ff, 8.5, 2.0, threads);

  const double e0 = reference.total_energy();
  std::printf("initial total energy: %.8g internal units\n", e0);
  std::printf("%10s %16s %16s %12s\n", "step", "E(FASDA)", "E(double)",
              "rel. error");

  double worst = 0.0;
  for (int done = 0; done < steps;) {
    const int block = std::min(sample, steps - done);
    fasda_engine.step(block);
    reference.step(block);
    done += block;
    const double ef = fasda_engine.total_energy();
    const double er = reference.total_energy();
    // Both trajectories are measured with the same double-precision
    // observable, exactly like the paper's host-side energy dumps.
    const double rel = std::abs(ef - er) / std::abs(er);
    worst = std::max(worst, rel);
    std::printf("%10d %16.8g %16.8g %12.3e\n", done, ef, er, rel);
  }

  std::printf("\nworst relative error: %.3e  (paper: always << 1e-3, mostly < 1e-4)\n",
              worst);
  std::printf("energy is %s\n",
              worst < 1e-3 ? "conserved (PASS)" : "NOT conserved (FAIL)");
  return worst < 1e-3 ? 0 : 1;
}
