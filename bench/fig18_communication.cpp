// Reproduces Figure 18: (A) average per-FPGA bandwidth demand for
// positions and forces in the multi-FPGA designs, and (B/C) the breakdown
// of position/force traffic by destination node, which shows that an FPGA
// communicates intensely only with its logical neighbours (forces more so,
// because zero forces to diagonal nodes are discarded, §5.4).
//
// Every number printed here comes out of the obs metrics registry
// (DESIGN.md §12): the fabrics count per-destination egress and the
// reliability record into the hub, and the bench reads the snapshot — no
// bench-side aggregation over TrafficMatrix remains.
//
// Flags:
//   --iters N      timesteps per design (default 2)
//   --cooldown N   ablation: egress cooldown counter (default 2)
//   --faults SPEC  arm the lossy-fabric model + ack/retransmit recovery and
//                  append a per-link reliability table (DESIGN.md §10).
//                  SPEC: drop=0.05,dup=0.02,reorder=0.02,corrupt=0.01,seed=7

#include <optional>
#include <string>

#include "bench_common.hpp"
#include "fasda/obs/obs.hpp"

namespace {

using namespace fasda;

void breakdown(const char* label, const obs::MetricsSnapshot& snap,
               const char* channel, idmap::NodeId src, int num_nodes) {
  const std::vector<double> pct =
      obs::egress_percentages(snap, channel, src, num_nodes);
  std::printf("  %s from node %d:", label, src);
  for (idmap::NodeId dst = 0; dst < num_nodes; ++dst) {
    if (dst == src) {
      std::printf("    -- ");
      continue;
    }
    std::printf(" %5.1f%%", pct[static_cast<std::size_t>(dst)]);
  }
  std::printf("\n");
}

std::uint64_t link_counter(const obs::MetricsSnapshot& snap, int src, int dst,
                           const char* field) {
  return snap.counter("net.rel.to." + std::to_string(dst) + "." + field, src);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);
  const int iters = static_cast<int>(cli.get_or("iters", 2L));
  const int cooldown = static_cast<int>(cli.get_or("cooldown", 2L));
  std::optional<net::FaultPlan> faults;
  if (auto spec = cli.get("faults")) {
    try {
      faults = net::FaultPlan::parse(*spec);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }

  bench::print_header("Figure 18 -- Communication bandwidth demand and breakdown");
  if (cooldown != 2) std::printf("[ablation: cooldown = %d cycles]\n", cooldown);
  if (faults) {
    std::printf("[lossy fabric: drop=%.3f dup=%.3f reorder=%.3f corrupt=%.3f "
                "seed=%llu]\n",
                faults->all.drop, faults->all.dup, faults->all.reorder,
                faults->all.corrupt,
                static_cast<unsigned long long>(faults->seed));
  }

  struct Design {
    const char* name;
    core::ClusterConfig config;
    geom::IVec3 cells;
  };
  const Design designs[] = {
      {"6x6x6 (1 PE)", bench::weak_config({2, 2, 2}), {6, 6, 6}},
      {"4x4x4-B (1 SPE, 3 PE)", bench::strong_config(3, 1), {4, 4, 4}},
      {"4x4x4-C (2 SPE, 3 PE)", bench::strong_config(3, 2), {4, 4, 4}},
  };

  std::printf("\n(A) Average per-FPGA bandwidth demand (Gbps @ 200 MHz)\n");
  std::printf("%-24s %10s %10s   (paper: < 25 Gbps each, C highest)\n",
              "design", "positions", "forces");

  for (const Design& d : designs) {
    auto config = d.config;
    config.channel.cooldown = cooldown;
    config.faults = faults;
    obs::Hub hub;  // fresh per design: each snapshot covers one cluster
    config.obs = &hub;
    const auto state = bench::standard_dataset(d.cells);
    core::Simulation sim(state, md::ForceField::sodium(), config);
    sim.run(iters);
    const obs::MetricsSnapshot snap = hub.metrics().snapshot();
    std::printf("%-24s %10.2f %10.2f\n", d.name,
                snap.gauge_or("net.pos.gbps_per_node"),
                snap.gauge_or("net.frc.gbps_per_node"));

    if (&d == &designs[2]) {
      const int n = sim.num_nodes();
      std::printf(
          "\n(B/C) Traffic breakdown by destination node, design C, 2x2x2 "
          "torus (dst 0..7)\n");
      breakdown("positions", snap, "net.pos", 0, n);
      breakdown("forces   ", snap, "net.frc", 0, n);
      std::printf(
          "  (expect: faces > edges > corner; forces steeper because zero\n"
          "   forces to distant nodes are discarded rather than returned)\n");

      if (faults) {
        std::printf(
            "\n(D) Per-link reliability, design C (channels merged; only "
            "links with faults shown)\n");
        std::printf("  %-8s %6s %5s %5s %5s %7s %6s %6s %8s\n", "link",
                    "drops", "dups", "reord", "crpt", "retrans", "crcfl",
                    "dupdc", "recovery");
        for (int src = 0; src < n; ++src) {
          for (int dst = 0; dst < n; ++dst) {
            const std::uint64_t drops = link_counter(snap, src, dst, "drops");
            const std::uint64_t dups = link_counter(snap, src, dst, "dups");
            const std::uint64_t reorders =
                link_counter(snap, src, dst, "reorders");
            const std::uint64_t corrupts =
                link_counter(snap, src, dst, "corrupts");
            const std::uint64_t retransmits =
                link_counter(snap, src, dst, "retransmits");
            if (!(drops || dups || reorders || corrupts) && !retransmits) {
              continue;
            }
            std::printf("  %3d->%-3d %6llu %5llu %5llu %5llu %7llu %6llu "
                        "%6llu %8llu\n",
                        src, dst, static_cast<unsigned long long>(drops),
                        static_cast<unsigned long long>(dups),
                        static_cast<unsigned long long>(reorders),
                        static_cast<unsigned long long>(corrupts),
                        static_cast<unsigned long long>(retransmits),
                        static_cast<unsigned long long>(
                            link_counter(snap, src, dst, "crc_failures")),
                        static_cast<unsigned long long>(
                            link_counter(snap, src, dst, "dups_discarded")),
                        static_cast<unsigned long long>(
                            link_counter(snap, src, dst, "recovery_cycles")));
          }
        }
        std::printf("  total: %llu retransmits, %llu timeouts, %llu acks, "
                    "%llu nacks, max retry depth %d\n",
                    static_cast<unsigned long long>(
                        snap.counter_total("net.rel.retransmits")),
                    static_cast<unsigned long long>(
                        snap.counter_total("net.rel.timeouts")),
                    static_cast<unsigned long long>(
                        snap.counter_total("net.rel.acks")),
                    static_cast<unsigned long long>(
                        snap.counter_total("net.rel.nacks")),
                    static_cast<int>(snap.gauge_or("net.rel.max_retry_depth")));
      }
    }
  }
  return 0;
}
