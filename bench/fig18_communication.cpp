// Reproduces Figure 18: (A) average per-FPGA bandwidth demand for
// positions and forces in the multi-FPGA designs, and (B/C) the breakdown
// of position/force traffic by destination node, which shows that an FPGA
// communicates intensely only with its logical neighbours (forces more so,
// because zero forces to diagonal nodes are discarded, §5.4).
//
// Flags:
//   --iters N      timesteps per design (default 2)
//   --cooldown N   ablation: egress cooldown counter (default 2)

#include <map>

#include "bench_common.hpp"

namespace {

using namespace fasda;

void breakdown(const char* label, const net::TrafficMatrix& traffic,
               idmap::NodeId src, int num_nodes) {
  std::uint64_t total = 0;
  std::map<idmap::NodeId, std::uint64_t> out;
  for (const auto& [pair, packets] : traffic.packets) {
    if (pair.first == src) {
      out[pair.second] += packets;
      total += packets;
    }
  }
  std::printf("  %s from node %d:", label, src);
  for (idmap::NodeId dst = 0; dst < num_nodes; ++dst) {
    if (dst == src) {
      std::printf("    -- ");
      continue;
    }
    const auto it = out.find(dst);
    const double pct =
        total == 0 || it == out.end()
            ? 0.0
            : 100.0 * static_cast<double>(it->second) / static_cast<double>(total);
    std::printf(" %5.1f%%", pct);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);
  const int iters = static_cast<int>(cli.get_or("iters", 2L));
  const int cooldown = static_cast<int>(cli.get_or("cooldown", 2L));

  bench::print_header("Figure 18 -- Communication bandwidth demand and breakdown");
  if (cooldown != 2) std::printf("[ablation: cooldown = %d cycles]\n", cooldown);

  struct Design {
    const char* name;
    core::ClusterConfig config;
    geom::IVec3 cells;
  };
  const Design designs[] = {
      {"6x6x6 (1 PE)", bench::weak_config({2, 2, 2}), {6, 6, 6}},
      {"4x4x4-B (1 SPE, 3 PE)", bench::strong_config(3, 1), {4, 4, 4}},
      {"4x4x4-C (2 SPE, 3 PE)", bench::strong_config(3, 2), {4, 4, 4}},
  };

  std::printf("\n(A) Average per-FPGA bandwidth demand (Gbps @ 200 MHz)\n");
  std::printf("%-24s %10s %10s   (paper: < 25 Gbps each, C highest)\n",
              "design", "positions", "forces");

  for (const Design& d : designs) {
    auto config = d.config;
    config.channel.cooldown = cooldown;
    const auto state = bench::standard_dataset(d.cells);
    core::Simulation sim(state, md::ForceField::sodium(), config);
    sim.run(iters);
    const auto t = sim.traffic();
    std::printf("%-24s %10.2f %10.2f\n", d.name, t.position_gbps_per_node,
                t.force_gbps_per_node);

    if (&d == &designs[2]) {
      std::printf(
          "\n(B/C) Traffic breakdown by destination node, design C, 2x2x2 "
          "torus (dst 0..7)\n");
      breakdown("positions", t.positions, 0, sim.num_nodes());
      breakdown("forces   ", t.forces, 0, sim.num_nodes());
      std::printf(
          "  (expect: faces > edges > corner; forces steeper because zero\n"
          "   forces to distant nodes are discarded rather than returned)\n");
    }
  }
  return 0;
}
