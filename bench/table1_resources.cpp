// Reproduces Table 1: per-FPGA LUT / FF / BRAM / URAM / DSP utilization for
// all seven design variants, from the analytic resource model (calibrated
// on the single-FPGA row; see DESIGN.md). Paper values are printed next to
// the model's for direct comparison.

#include "bench_common.hpp"
#include "fasda/model/resource_model.hpp"

int main(int, char**) {
  using namespace fasda;
  bench::print_header("Table 1 -- Hardware utilization of all design variants");

  struct PaperRow {
    int lut, ff, bram, uram, dsp;
  };
  const PaperRow paper[] = {
      {40, 22, 29, 20, 20}, {44, 24, 38, 31, 20}, {46, 24, 33, 42, 20},
      {46, 24, 33, 42, 20}, {23, 16, 31, 13, 6},  {35, 20, 51, 18, 14},
      {52, 26, 76, 28, 27},
  };

  const model::ResourceModel resources;
  std::printf("%-9s %6s | %-11s %-11s %-11s %-11s %-11s\n", "design", "#FPGA",
              "LUT (ref)", "FF (ref)", "BRAM (ref)", "URAM (ref)", "DSP (ref)");

  const auto variants = bench::table1_variants();
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto u = resources.utilization(variants[i].config);
    std::printf(
        "%-9s %6d | %3.0f%% (%2d%%)  %3.0f%% (%2d%%)  %3.0f%% (%2d%%)  "
        "%3.0f%% (%2d%%)  %3.0f%% (%2d%%)\n",
        variants[i].name.c_str(), variants[i].config.node_dims.product(),
        100 * u.lut, paper[i].lut, 100 * u.ff, paper[i].ff, 100 * u.bram,
        paper[i].bram, 100 * u.uram, paper[i].uram, 100 * u.dsp, paper[i].dsp);
  }

  std::printf(
      "\nResiduals are largest in the memory columns of the 4x4x4 rows: the\n"
      "paper notes those designs re-balance between LUT, BRAM and URAM,\n"
      "which a single linear model intentionally does not chase.\n");
  return 0;
}
