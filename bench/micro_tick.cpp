// Microbenchmark for the idle-cycle elision scheduler (DESIGN.md §13):
// ticks/sec of the naive every-component-every-cycle loop versus the elided
// loop, as a function of how idle the simulated cluster actually is.
//
// Two panels:
//
//   synthetic   A sharded Scheduler over timer components whose busy/idle
//               mix is controlled exactly. Sweeps the idle fraction and
//               reports equivalent component-ticks per wall second for both
//               modes. This isolates the scheduler: at high idle fractions
//               the elided loop jumps whole windows and sleeps whole
//               shards, so the speedup approaches period/1; at zero
//               idleness it shows the sweep overhead the oracle costs.
//
//   cluster     The real MD cluster (8 FPGAs, 2x2x2 cells each) with the
//               inter-FPGA link latency swept upward. Longer links mean
//               more cycles where every component is waiting on packets in
//               flight — the distributed-deployment regime the elision
//               tentpole targets — and the wall-clock ratio shows how much
//               of each configuration the oracle proves dead. Simulated
//               results are bitwise identical between the two modes by
//               contract (tests/tick_elision_test.cpp enforces it).
//
// Flags:
//   --cycles N     synthetic panel budget per run (default 100000)
//   --iters N      cluster panel timesteps (default 2)
//   --per-cell N   cluster panel particles per cell (default 16)

#include <chrono>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "fasda/sim/kernel.hpp"

namespace {

using namespace fasda;

/// Self-timed component: acts every `period` cycles and sleeps in between,
/// with work cheap enough that scheduling overhead dominates — the regime
/// that separates the two loops.
class TimerComponent : public sim::Component {
 public:
  TimerComponent(std::string name, sim::Cycle period)
      : Component(std::move(name)), period_(period) {}

  void tick(sim::Cycle now) override {
    if (now % period_ == 0) work_ += now ^ (work_ << 1);
    ++ticks_;
  }

  sim::Cycle next_wake(sim::Cycle now) const override {
    return ((now + period_ - 1) / period_) * period_;
  }

  void skip_idle(sim::Cycle from, sim::Cycle to) override {
    ticks_ += to - from;
  }

  std::uint64_t work() const { return work_; }
  std::uint64_t ticks() const { return ticks_; }

 private:
  sim::Cycle period_;
  std::uint64_t work_ = 0;
  std::uint64_t ticks_ = 0;  ///< real + replayed; must equal cycles run
};

struct SyntheticResult {
  double wall_seconds;
  std::uint64_t checksum;        ///< folded component state (mode-invariant)
  sim::ElisionStats stats;
};

/// `idle_out_of_64` components per 64 sleep on a long period; the rest tick
/// every cycle. Shards are homogeneous so the idle ones sleep as whole
/// shards, exercising the group fast path.
SyntheticResult run_synthetic(int idle_out_of_64, sim::Cycle cycles,
                              sim::TickMode mode) {
  constexpr int kShards = 64;
  constexpr int kPerShard = 16;
  constexpr sim::Cycle kIdlePeriod = 256;
  sim::Scheduler sched;
  sched.set_tick_mode(mode);
  std::vector<std::unique_ptr<TimerComponent>> comps;
  for (int s = 0; s < kShards; ++s) {
    const sim::Cycle period = s < idle_out_of_64 ? kIdlePeriod : 1;
    for (int k = 0; k < kPerShard; ++k) {
      comps.push_back(std::make_unique<TimerComponent>(
          "t" + std::to_string(s) + "." + std::to_string(k), period));
      sched.add(comps.back().get(), s);
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  sched.run_until([&] { return sched.cycle() >= cycles; }, cycles + 1);
  const auto t1 = std::chrono::steady_clock::now();
  SyntheticResult r;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.checksum = 0;
  for (const auto& c : comps) {
    r.checksum ^= c->work() + c->ticks();  // ticks() must count every cycle
  }
  r.stats = sched.elision_stats();
  return r;
}

struct ClusterResult {
  double wall_seconds;
  sim::Cycle total_cycles;
  sim::ElisionStats stats;
};

ClusterResult run_cluster(int link_latency, int iters, int per_cell,
                          bool naive) {
  auto config = bench::large_config({2, 2, 2});
  config.num_worker_threads = 1;
  config.channel.link_latency = link_latency;
  if (naive) config.tick_mode = sim::TickMode::kNaive;
  const auto state = bench::standard_dataset({4, 4, 4}, per_cell);
  const auto t0 = std::chrono::steady_clock::now();
  core::Simulation sim(state, md::ForceField::sodium(), config);
  sim.run(iters);
  const auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double>(t1 - t0).count(), sim.total_cycles(),
          sim.elision_stats()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);
  const auto cycles = static_cast<sim::Cycle>(cli.get_or("cycles", 100000L));
  const int iters = static_cast<int>(cli.get_or("iters", 2L));
  const int per_cell = static_cast<int>(cli.get_or("per-cell", 16L));

  bench::print_header("micro_tick -- naive vs elided scheduler throughput");

  std::printf("-- Synthetic (64 shards x 16 components, %lu cycles) --\n",
              static_cast<unsigned long>(cycles));
  std::printf("%-12s %14s %14s %9s %12s\n", "idle frac", "naive Mt/s",
              "elided Mt/s", "speedup", "elided cyc");
  for (const int idle : {0, 32, 58, 63, 64}) {
    const auto naive = run_synthetic(idle, cycles, sim::TickMode::kNaive);
    const auto elided = run_synthetic(idle, cycles, sim::TickMode::kElide);
    if (naive.checksum != elided.checksum) {
      std::printf("CHECKSUM MISMATCH at idle=%d\n", idle);
      return 1;
    }
    // Equivalent throughput: the 1024 components x `cycles` schedule,
    // divided by wall time — replayed (skipped) ticks count as served.
    const double denom = 1e6;
    const double total =
        static_cast<double>(cycles) * 1024.0;
    std::printf("%-12.3f %14.1f %14.1f %8.2fx %12lu\n", idle / 64.0,
                total / naive.wall_seconds / denom,
                total / elided.wall_seconds / denom,
                naive.wall_seconds / elided.wall_seconds,
                static_cast<unsigned long>(elided.stats.elided_cycles));
  }

  std::printf(
      "\n-- Cluster (8 FPGAs, 2x2x2 cells, %d particles/cell, %d iters) --\n",
      per_cell, iters);
  std::printf("%-14s %11s %11s %9s %11s %11s\n", "link latency", "naive s",
              "elided s", "speedup", "exec cyc", "elided cyc");
  for (const int latency : {1, 200, 2000, 20000}) {
    const auto naive = run_cluster(latency, iters, per_cell, true);
    const auto elided = run_cluster(latency, iters, per_cell, false);
    if (naive.total_cycles != elided.total_cycles) {
      std::printf("CYCLE COUNT MISMATCH at latency=%d\n", latency);
      return 1;
    }
    std::printf("%-14d %11.3f %11.3f %8.2fx %11lu %11lu\n", latency,
                naive.wall_seconds, elided.wall_seconds,
                naive.wall_seconds / elided.wall_seconds,
                static_cast<unsigned long>(elided.stats.executed_cycles),
                static_cast<unsigned long>(elided.stats.elided_cycles));
  }

  std::printf(
      "\nThe elided loop wins exactly where cycles are provably dead: long\n"
      "link latencies (packets in flight, every component asleep) and idle\n"
      "shards. Dense always-busy workloads pay only the oracle sweep.\n");
  return 0;
}
