// Ablation of the cell-size choice (Fig. 3, Eq. 3): with the cell edge c
// expressed in cutoff units, a particle must be paired against every
// particle in the (2·ceil(1/c)+1)³-cell neighbourhood, of which only the
// cutoff sphere's fraction P(c) = (4π/3)/(27·c³ · …) survives the filter.
//
//   c < 1: more (and more distant) cells to evaluate and route between —
//          drastically more inter-cell communication;
//   c = 1: the paper's choice — 26 neighbour cells, P = 15.5 %;
//   c > 1: fewer cells but the filter discards an ever larger margin.
//
// Both the analytic fraction and an empirical measurement on a uniform
// random dataset are reported.
//
//   ./ablation_cellsize [--per-cell N]

#include <cmath>
#include <numbers>

#include "bench_common.hpp"
#include "fasda/md/energy.hpp"

namespace {

using namespace fasda;

/// Cells in the neighbourhood that can contain a pair partner when the
/// cell edge is `c` cutoffs: (2*ceil(1/c)+1)^3.
int neighborhood_cells(double c) {
  const int reach = static_cast<int>(std::ceil(1.0 / c - 1e-12));
  const int width = 2 * reach + 1;
  return width * width * width;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);
  const int per_cell = static_cast<int>(cli.get_or("per-cell", 16L));

  bench::print_header(
      "Ablation -- cell size vs cutoff (Fig. 3 / Eq. 3 trade-off)");
  std::printf(
      "%-10s %8s %12s %12s %12s\n", "cell/R_c", "cells", "P analytic",
      "P measured", "pairs/N");

  const double rc = 8.5;
  for (const double c : {0.5, 2.0 / 3.0, 1.0, 1.5, 2.0}) {
    const int cells = neighborhood_cells(c);
    // Analytic acceptance: cutoff-sphere volume over neighbourhood volume.
    const double p_analytic =
        (4.0 / 3.0) * std::numbers::pi /
        (static_cast<double>(cells) * c * c * c);

    // Empirical: uniform dataset in cells of edge c·R_c; count pairs within
    // R_c against candidates in the neighbourhood.
    md::DatasetParams params;
    params.placement = md::Placement::kUniform;
    params.particles_per_cell =
        std::max(1, static_cast<int>(per_cell * c * c * c));
    params.min_distance = 0.8;
    params.seed = 99;
    const int dims = std::max(3, static_cast<int>(std::ceil(3.0 / c)));
    const auto state = md::generate_dataset({dims, dims, dims}, c * rc,
                                            md::ForceField::sodium(), params);
    const std::size_t pairs = md::count_pairs_within_cutoff(state, rc);
    const double density =
        static_cast<double>(state.size()) /
        (std::pow(dims * c * rc, 3));
    const double candidates_per_particle =
        static_cast<double>(cells) * density * std::pow(c * rc, 3);
    const double p_measured =
        2.0 * static_cast<double>(pairs) /
        (static_cast<double>(state.size()) * candidates_per_particle);

    std::printf("%-10.3f %8d %11.1f%% %11.1f%% %12.1f\n", c, cells,
                100.0 * p_analytic, 100.0 * p_measured,
                2.0 * static_cast<double>(pairs) /
                    static_cast<double>(state.size()));
  }

  std::printf(
      "\nAt c = 1 (the paper's choice) the filter passes ~15.5%% (Eq. 3) with\n"
      "only 26 neighbour cells; smaller cells multiply the cells to route\n"
      "between, larger cells drown the filters in out-of-range candidates.\n");
  return 0;
}
