// Thread vs process shard transport (DESIGN.md §14) on the Fig. 16
// geometries: wall-clock per run and whole-cluster cycle counts for the
// in-process transport at 1/2/4 scheduler threads against the process
// transport at 1/2/4 forked workers. Simulated results are bitwise
// identical across every column by contract
// (tests/proc_sharding_test.cpp enforces it); what differs is the host
// cost — on a single-core host the process columns mostly measure the
// round-protocol overhead (2-3 socketpair round trips per executed
// cycle), not parallel speedup. pairs_issued is printed as the cheap
// cross-column identity check.
//
// Flags:
//   --iters N      timesteps per configuration (default 2)
//   --per-cell N   particles per cell (default 16)
//   --latency N    inter-FPGA link latency in cycles (default 50)

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace fasda;

struct Column {
  const char* name;
  int threads;
  int procs;
};

struct RunStats {
  double wall_s = 0;
  sim::Cycle cycles = 0;
  std::uint64_t pairs = 0;
};

RunStats timed_run(core::ClusterConfig config, geom::IVec3 cells,
                   int per_cell, int iters) {
  const auto state = bench::standard_dataset(cells, per_cell);
  const auto t0 = std::chrono::steady_clock::now();
  core::Simulation sim(state, md::ForceField::sodium(), config);
  sim.run(iters);
  const auto t1 = std::chrono::steady_clock::now();
  RunStats r;
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.cycles = sim.total_cycles();
  r.pairs = sim.pairs_issued();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int iters = static_cast<int>(cli.get_or("iters", 2L));
  const int per_cell = static_cast<int>(cli.get_or("per-cell", 16L));
  const int latency = static_cast<int>(cli.get_or("latency", 50L));

  struct Geometry {
    const char* name;
    geom::IVec3 nodes;
    geom::IVec3 cells;
  };
  // Fig. 16 weak-scaling rows that actually shard (>= 2 FPGAs), cells from
  // node_dims * 3 (each FPGA owns 3x3x3 cells), plus the strong-scaling
  // variant-C cluster.
  const std::vector<Geometry> geometries = {
      {"weak_6x3x3_2fpga", {2, 1, 1}, {6, 3, 3}},
      {"weak_6x6x3_4fpga", {2, 2, 1}, {6, 6, 3}},
      {"weak_6x6x6_8fpga", {2, 2, 2}, {6, 6, 6}},
  };
  const std::vector<Column> columns = {
      {"threads=1", 1, 0}, {"threads=2", 2, 0}, {"threads=4", 4, 0},
      {"procs=1", 1, 1},   {"procs=2", 1, 2},   {"procs=4", 1, 4},
  };

  std::printf("proc sharding: transport wall clock, %d iters, %d/cell, "
              "link_latency=%d (bitwise-identical columns)\n\n",
              iters, per_cell, latency);
  std::printf("%-18s %-10s %9s %10s %14s\n", "configuration", "transport",
              "wall_s", "cycles", "pairs");
  for (const auto& g : geometries) {
    for (const auto& col : columns) {
      auto config = bench::weak_config(g.nodes);
      config.channel.link_latency = latency;
      config.num_worker_threads = col.threads;
      config.proc_workers = col.procs;
      const RunStats r = timed_run(config, g.cells, per_cell, iters);
      std::printf("%-18s %-10s %9.3f %10llu %14llu\n", g.name, col.name,
                  r.wall_s, static_cast<unsigned long long>(r.cycles),
                  static_cast<unsigned long long>(r.pairs));
    }
    std::printf("\n");
  }
  // Strong-scaling variant C (2 SPEs x 3 PEs, 8 FPGAs over 4x4x4 cells).
  for (const auto& col : columns) {
    auto config = bench::strong_config(3, 2);
    config.channel.link_latency = latency;
    config.num_worker_threads = col.threads;
    config.proc_workers = col.procs;
    const RunStats r = timed_run(config, {4, 4, 4}, per_cell, iters);
    std::printf("%-18s %-10s %9.3f %10llu %14llu\n", "strong_4x4x4_C",
                col.name, r.wall_s, static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.pairs));
  }
  return 0;
}
