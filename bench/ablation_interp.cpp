// Ablation of the interpolation depth (§3.4): bins per section versus the
// worst-case relative error of the r^-14 table, the measured per-particle
// force error of the functional engine, and the coefficient-storage cost
// the resource model charges per pipeline. Shows why the default (14
// sections x 256 bins) sits at the knee: error comfortably below float32
// working precision at ~7 BRAM per table pair.
//
//   ./ablation_interp [--per-cell N]

#include <cmath>

#include "bench_common.hpp"
#include "fasda/md/energy.hpp"
#include "fasda/md/functional_engine.hpp"

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);
  const int per_cell = static_cast<int>(cli.get_or("per-cell", 16L));

  bench::print_header("Ablation -- interpolation depth (Eqs. 8-10)");

  const auto ff = md::ForceField::sodium();
  const auto state = bench::standard_dataset({3, 3, 3}, per_cell);
  const auto exact = md::compute_forces(state, ff, 8.5);
  double force_scale = 0.0;
  for (const auto& f : exact) force_scale = std::max(force_scale, f.norm());

  std::printf("%8s | %14s %14s | %10s\n", "bins", "table max err",
              "force max err", "36Kb BRAMs");

  for (const int bins : {16, 32, 64, 128, 256, 512, 1024}) {
    interp::InterpConfig table_config;
    table_config.num_bins = bins;
    const auto table = interp::InterpTable::build_r_pow(14, table_config);
    const double table_err = table.max_relative_error(
        [](double x) { return std::pow(x, -7.0); }, 8);

    md::FunctionalConfig config;
    config.cutoff = 8.5;
    config.dt = 2.0;
    config.table = table_config;
    md::FunctionalEngine engine(state, ff, config);
    engine.evaluate_forces();
    const auto approx = engine.forces_by_particle();
    double worst = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
      worst = std::max(worst, (approx[i].cast<double>() - exact[i]).norm());
    }
    // Two coefficients per bin, two tables (r^-14 and r^-8) per pipeline.
    const double brams =
        std::ceil(2.0 * table.storage_bits() / (36.0 * 1024.0));

    std::printf("%8d | %14.3e %14.3e | %10.0f%s\n", bins, table_err,
                worst / force_scale, brams, bins == 256 ? "   <- default" : "");
  }
  return 0;
}
