// Reproduces Figure 17: hardware and time utilization of the key
// components (position ring, force ring, filters, PEs, motion-update
// units) for all seven design variants. Hardware utilization is work done
// versus capacity; time utilization is the fraction of cycles a component
// was active (§5.3).
//
// The table is sourced from the obs metrics registry (DESIGN.md §12): each
// variant runs with a hub attached and the bench reads the `util.*` gauges
// out of the snapshot — the same numbers any external scraper would see —
// instead of calling Simulation::utilization() directly.
//
// Flags:
//   --iters N     timesteps per variant (default 2)
//   --filters N   ablation: filters per pipeline (default 6; the paper
//                 argues 6 matches the one-force-per-cycle pipeline)

#include "bench_common.hpp"
#include "fasda/obs/obs.hpp"

int main(int argc, char** argv) {
  using namespace fasda;
  const util::Cli cli(argc, argv);
  const int iters = static_cast<int>(cli.get_or("iters", 2L));
  const int filters = static_cast<int>(cli.get_or("filters", 6L));

  bench::print_header("Figure 17 -- Utilization of key components");
  if (filters != 6) std::printf("[ablation: %d filters per pipeline]\n", filters);
  std::printf("%-9s | %5s %5s | %5s %5s | %6s %6s | %5s %5s | %5s %5s\n",
              "variant", "PR-hw", "PR-t", "FR-hw", "FR-t", "Flt-hw", "Flt-t",
              "PE-hw", "PE-t", "MU-hw", "MU-t");

  for (const auto& variant : bench::table1_variants()) {
    auto config = variant.config;
    config.filters_per_pipeline = filters;
    obs::Hub hub;  // fresh per variant: each snapshot covers one design
    config.obs = &hub;
    const auto state = bench::standard_dataset(variant.cells);
    core::Simulation sim(state, md::ForceField::sodium(), config);
    sim.run(iters);
    const obs::MetricsSnapshot snap = hub.metrics().snapshot();
    std::printf(
        "%-9s | %5.2f %5.2f | %5.2f %5.2f | %6.2f %6.2f | %5.2f %5.2f | "
        "%5.3f %5.3f\n",
        variant.name.c_str(), snap.gauge_or("util.pr.hardware"),
        snap.gauge_or("util.pr.time"), snap.gauge_or("util.fr.hardware"),
        snap.gauge_or("util.fr.time"), snap.gauge_or("util.filter.hardware"),
        snap.gauge_or("util.filter.time"), snap.gauge_or("util.pe.hardware"),
        snap.gauge_or("util.pe.time"), snap.gauge_or("util.mu.hardware"),
        snap.gauge_or("util.mu.time"));
  }

  std::printf(
      "\nPaper reference points: PE time ~0.8, PE hardware 0.5-0.6, filters\n"
      "matching the PEs, MU < 0.05, PR underused (position locality), PR/FR\n"
      "utilization rising with node count in weak scaling.\n");
  return 0;
}
