file(REMOVE_RECURSE
  "CMakeFiles/ring_test.dir/ring_test.cpp.o"
  "CMakeFiles/ring_test.dir/ring_test.cpp.o.d"
  "ring_test"
  "ring_test.pdb"
  "ring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
