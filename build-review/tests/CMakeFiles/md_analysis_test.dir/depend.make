# Empty dependencies file for md_analysis_test.
# This may be replaced when dependencies are built.
