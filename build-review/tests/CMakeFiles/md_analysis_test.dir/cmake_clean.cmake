file(REMOVE_RECURSE
  "CMakeFiles/md_analysis_test.dir/md_analysis_test.cpp.o"
  "CMakeFiles/md_analysis_test.dir/md_analysis_test.cpp.o.d"
  "md_analysis_test"
  "md_analysis_test.pdb"
  "md_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
