file(REMOVE_RECURSE
  "CMakeFiles/core_simulation_test.dir/core_simulation_test.cpp.o"
  "CMakeFiles/core_simulation_test.dir/core_simulation_test.cpp.o.d"
  "core_simulation_test"
  "core_simulation_test.pdb"
  "core_simulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
