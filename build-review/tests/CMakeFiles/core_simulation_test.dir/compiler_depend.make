# Empty compiler generated dependencies file for core_simulation_test.
# This may be replaced when dependencies are built.
