file(REMOVE_RECURSE
  "CMakeFiles/ewald_test.dir/ewald_test.cpp.o"
  "CMakeFiles/ewald_test.dir/ewald_test.cpp.o.d"
  "ewald_test"
  "ewald_test.pdb"
  "ewald_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ewald_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
