# Empty dependencies file for ewald_test.
# This may be replaced when dependencies are built.
