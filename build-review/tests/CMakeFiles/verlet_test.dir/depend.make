# Empty dependencies file for verlet_test.
# This may be replaced when dependencies are built.
