file(REMOVE_RECURSE
  "CMakeFiles/verlet_test.dir/verlet_test.cpp.o"
  "CMakeFiles/verlet_test.dir/verlet_test.cpp.o.d"
  "verlet_test"
  "verlet_test.pdb"
  "verlet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verlet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
