file(REMOVE_RECURSE
  "CMakeFiles/ewald_longrange_test.dir/ewald_longrange_test.cpp.o"
  "CMakeFiles/ewald_longrange_test.dir/ewald_longrange_test.cpp.o.d"
  "ewald_longrange_test"
  "ewald_longrange_test.pdb"
  "ewald_longrange_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ewald_longrange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
