
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ewald_longrange_test.cpp" "tests/CMakeFiles/ewald_longrange_test.dir/ewald_longrange_test.cpp.o" "gcc" "tests/CMakeFiles/ewald_longrange_test.dir/ewald_longrange_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/md/CMakeFiles/fasda_md.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geom/CMakeFiles/fasda_geom.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interp/CMakeFiles/fasda_interp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/fasda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
