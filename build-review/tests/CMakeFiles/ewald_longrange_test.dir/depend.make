# Empty dependencies file for ewald_longrange_test.
# This may be replaced when dependencies are built.
