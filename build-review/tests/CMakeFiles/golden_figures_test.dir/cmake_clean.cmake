file(REMOVE_RECURSE
  "CMakeFiles/golden_figures_test.dir/golden_figures_test.cpp.o"
  "CMakeFiles/golden_figures_test.dir/golden_figures_test.cpp.o.d"
  "golden_figures_test"
  "golden_figures_test.pdb"
  "golden_figures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_figures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
