# Empty dependencies file for golden_figures_test.
# This may be replaced when dependencies are built.
