# Empty compiler generated dependencies file for cbb_test.
# This may be replaced when dependencies are built.
