file(REMOVE_RECURSE
  "CMakeFiles/cbb_test.dir/cbb_test.cpp.o"
  "CMakeFiles/cbb_test.dir/cbb_test.cpp.o.d"
  "cbb_test"
  "cbb_test.pdb"
  "cbb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
