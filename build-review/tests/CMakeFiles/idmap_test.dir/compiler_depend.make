# Empty compiler generated dependencies file for idmap_test.
# This may be replaced when dependencies are built.
