file(REMOVE_RECURSE
  "CMakeFiles/idmap_test.dir/idmap_test.cpp.o"
  "CMakeFiles/idmap_test.dir/idmap_test.cpp.o.d"
  "idmap_test"
  "idmap_test.pdb"
  "idmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
