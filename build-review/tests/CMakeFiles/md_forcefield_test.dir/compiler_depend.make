# Empty compiler generated dependencies file for md_forcefield_test.
# This may be replaced when dependencies are built.
