file(REMOVE_RECURSE
  "CMakeFiles/md_forcefield_test.dir/md_forcefield_test.cpp.o"
  "CMakeFiles/md_forcefield_test.dir/md_forcefield_test.cpp.o.d"
  "md_forcefield_test"
  "md_forcefield_test.pdb"
  "md_forcefield_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_forcefield_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
