file(REMOVE_RECURSE
  "CMakeFiles/parallel_scheduler_test.dir/parallel_scheduler_test.cpp.o"
  "CMakeFiles/parallel_scheduler_test.dir/parallel_scheduler_test.cpp.o.d"
  "parallel_scheduler_test"
  "parallel_scheduler_test.pdb"
  "parallel_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
