# Empty dependencies file for md_reference_engine_test.
# This may be replaced when dependencies are built.
