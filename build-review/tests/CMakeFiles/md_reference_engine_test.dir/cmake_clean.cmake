file(REMOVE_RECURSE
  "CMakeFiles/md_reference_engine_test.dir/md_reference_engine_test.cpp.o"
  "CMakeFiles/md_reference_engine_test.dir/md_reference_engine_test.cpp.o.d"
  "md_reference_engine_test"
  "md_reference_engine_test.pdb"
  "md_reference_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_reference_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
