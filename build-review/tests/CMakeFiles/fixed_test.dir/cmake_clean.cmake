file(REMOVE_RECURSE
  "CMakeFiles/fixed_test.dir/fixed_test.cpp.o"
  "CMakeFiles/fixed_test.dir/fixed_test.cpp.o.d"
  "fixed_test"
  "fixed_test.pdb"
  "fixed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
