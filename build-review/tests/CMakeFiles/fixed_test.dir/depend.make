# Empty dependencies file for fixed_test.
# This may be replaced when dependencies are built.
