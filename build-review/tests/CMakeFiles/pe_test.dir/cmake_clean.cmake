file(REMOVE_RECURSE
  "CMakeFiles/pe_test.dir/pe_test.cpp.o"
  "CMakeFiles/pe_test.dir/pe_test.cpp.o.d"
  "pe_test"
  "pe_test.pdb"
  "pe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
