file(REMOVE_RECURSE
  "CMakeFiles/md_dataset_test.dir/md_dataset_test.cpp.o"
  "CMakeFiles/md_dataset_test.dir/md_dataset_test.cpp.o.d"
  "md_dataset_test"
  "md_dataset_test.pdb"
  "md_dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
