# Empty dependencies file for md_dataset_test.
# This may be replaced when dependencies are built.
