# Empty compiler generated dependencies file for md_functional_engine_test.
# This may be replaced when dependencies are built.
