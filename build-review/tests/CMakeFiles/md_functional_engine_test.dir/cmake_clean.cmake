file(REMOVE_RECURSE
  "CMakeFiles/md_functional_engine_test.dir/md_functional_engine_test.cpp.o"
  "CMakeFiles/md_functional_engine_test.dir/md_functional_engine_test.cpp.o.d"
  "md_functional_engine_test"
  "md_functional_engine_test.pdb"
  "md_functional_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_functional_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
