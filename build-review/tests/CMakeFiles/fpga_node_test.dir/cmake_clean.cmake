file(REMOVE_RECURSE
  "CMakeFiles/fpga_node_test.dir/fpga_node_test.cpp.o"
  "CMakeFiles/fpga_node_test.dir/fpga_node_test.cpp.o.d"
  "fpga_node_test"
  "fpga_node_test.pdb"
  "fpga_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
