file(REMOVE_RECURSE
  "CMakeFiles/fasda_md_cli.dir/fasda_md.cpp.o"
  "CMakeFiles/fasda_md_cli.dir/fasda_md.cpp.o.d"
  "fasda_md"
  "fasda_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasda_md_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
