# Empty compiler generated dependencies file for fasda_md_cli.
# This may be replaced when dependencies are built.
