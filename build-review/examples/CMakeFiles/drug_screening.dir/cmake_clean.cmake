file(REMOVE_RECURSE
  "CMakeFiles/drug_screening.dir/drug_screening.cpp.o"
  "CMakeFiles/drug_screening.dir/drug_screening.cpp.o.d"
  "drug_screening"
  "drug_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drug_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
