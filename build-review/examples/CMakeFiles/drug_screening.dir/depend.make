# Empty dependencies file for drug_screening.
# This may be replaced when dependencies are built.
