file(REMOVE_RECURSE
  "CMakeFiles/custom_force_model.dir/custom_force_model.cpp.o"
  "CMakeFiles/custom_force_model.dir/custom_force_model.cpp.o.d"
  "custom_force_model"
  "custom_force_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_force_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
