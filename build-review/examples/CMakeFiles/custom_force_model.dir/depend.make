# Empty dependencies file for custom_force_model.
# This may be replaced when dependencies are built.
