file(REMOVE_RECURSE
  "CMakeFiles/ablation_interp.dir/ablation_interp.cpp.o"
  "CMakeFiles/ablation_interp.dir/ablation_interp.cpp.o.d"
  "ablation_interp"
  "ablation_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
