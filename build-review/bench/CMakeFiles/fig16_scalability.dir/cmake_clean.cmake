file(REMOVE_RECURSE
  "CMakeFiles/fig16_scalability.dir/fig16_scalability.cpp.o"
  "CMakeFiles/fig16_scalability.dir/fig16_scalability.cpp.o.d"
  "fig16_scalability"
  "fig16_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
