# Empty dependencies file for fig16_scalability.
# This may be replaced when dependencies are built.
