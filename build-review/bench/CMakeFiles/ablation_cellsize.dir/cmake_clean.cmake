file(REMOVE_RECURSE
  "CMakeFiles/ablation_cellsize.dir/ablation_cellsize.cpp.o"
  "CMakeFiles/ablation_cellsize.dir/ablation_cellsize.cpp.o.d"
  "ablation_cellsize"
  "ablation_cellsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cellsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
