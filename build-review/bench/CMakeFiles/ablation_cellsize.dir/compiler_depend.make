# Empty compiler generated dependencies file for ablation_cellsize.
# This may be replaced when dependencies are built.
