# Empty dependencies file for fig18_communication.
# This may be replaced when dependencies are built.
