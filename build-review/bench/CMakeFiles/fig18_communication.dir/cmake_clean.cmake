file(REMOVE_RECURSE
  "CMakeFiles/fig18_communication.dir/fig18_communication.cpp.o"
  "CMakeFiles/fig18_communication.dir/fig18_communication.cpp.o.d"
  "fig18_communication"
  "fig18_communication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_communication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
