file(REMOVE_RECURSE
  "CMakeFiles/fig17_utilization.dir/fig17_utilization.cpp.o"
  "CMakeFiles/fig17_utilization.dir/fig17_utilization.cpp.o.d"
  "fig17_utilization"
  "fig17_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
