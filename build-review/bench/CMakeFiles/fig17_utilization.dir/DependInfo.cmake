
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig17_utilization.cpp" "bench/CMakeFiles/fig17_utilization.dir/fig17_utilization.cpp.o" "gcc" "bench/CMakeFiles/fig17_utilization.dir/fig17_utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/fasda_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/model/CMakeFiles/fasda_model.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fpga/CMakeFiles/fasda_fpga.dir/DependInfo.cmake"
  "/root/repo/build-review/src/cbb/CMakeFiles/fasda_cbb.dir/DependInfo.cmake"
  "/root/repo/build-review/src/pe/CMakeFiles/fasda_pe.dir/DependInfo.cmake"
  "/root/repo/build-review/src/idmap/CMakeFiles/fasda_idmap.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/fasda_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/md/CMakeFiles/fasda_md.dir/DependInfo.cmake"
  "/root/repo/build-review/src/geom/CMakeFiles/fasda_geom.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interp/CMakeFiles/fasda_interp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/fasda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
