# Empty dependencies file for fig17_utilization.
# This may be replaced when dependencies are built.
