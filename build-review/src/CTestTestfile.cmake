# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geom")
subdirs("fixed")
subdirs("interp")
subdirs("md")
subdirs("idmap")
subdirs("sim")
subdirs("ring")
subdirs("pe")
subdirs("cbb")
subdirs("net")
subdirs("sync")
subdirs("fpga")
subdirs("core")
subdirs("engine")
subdirs("model")
