file(REMOVE_RECURSE
  "libfasda_geom.a"
)
