# Empty dependencies file for fasda_geom.
# This may be replaced when dependencies are built.
