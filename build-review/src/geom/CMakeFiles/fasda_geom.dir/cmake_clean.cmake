file(REMOVE_RECURSE
  "CMakeFiles/fasda_geom.dir/cell_grid.cpp.o"
  "CMakeFiles/fasda_geom.dir/cell_grid.cpp.o.d"
  "libfasda_geom.a"
  "libfasda_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasda_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
