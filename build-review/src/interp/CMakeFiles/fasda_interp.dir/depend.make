# Empty dependencies file for fasda_interp.
# This may be replaced when dependencies are built.
