file(REMOVE_RECURSE
  "libfasda_interp.a"
)
