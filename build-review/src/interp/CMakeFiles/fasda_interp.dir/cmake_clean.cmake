file(REMOVE_RECURSE
  "CMakeFiles/fasda_interp.dir/ewald.cpp.o"
  "CMakeFiles/fasda_interp.dir/ewald.cpp.o.d"
  "CMakeFiles/fasda_interp.dir/interp_table.cpp.o"
  "CMakeFiles/fasda_interp.dir/interp_table.cpp.o.d"
  "libfasda_interp.a"
  "libfasda_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasda_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
