file(REMOVE_RECURSE
  "CMakeFiles/fasda_cbb.dir/cbb.cpp.o"
  "CMakeFiles/fasda_cbb.dir/cbb.cpp.o.d"
  "libfasda_cbb.a"
  "libfasda_cbb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasda_cbb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
