file(REMOVE_RECURSE
  "libfasda_cbb.a"
)
