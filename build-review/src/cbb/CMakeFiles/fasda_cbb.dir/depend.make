# Empty dependencies file for fasda_cbb.
# This may be replaced when dependencies are built.
