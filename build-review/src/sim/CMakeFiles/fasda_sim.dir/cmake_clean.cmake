file(REMOVE_RECURSE
  "CMakeFiles/fasda_sim.dir/parallel_scheduler.cpp.o"
  "CMakeFiles/fasda_sim.dir/parallel_scheduler.cpp.o.d"
  "libfasda_sim.a"
  "libfasda_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasda_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
