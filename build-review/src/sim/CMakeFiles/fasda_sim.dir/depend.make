# Empty dependencies file for fasda_sim.
# This may be replaced when dependencies are built.
