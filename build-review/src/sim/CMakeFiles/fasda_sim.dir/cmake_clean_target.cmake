file(REMOVE_RECURSE
  "libfasda_sim.a"
)
