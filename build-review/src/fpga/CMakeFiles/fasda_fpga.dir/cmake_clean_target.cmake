file(REMOVE_RECURSE
  "libfasda_fpga.a"
)
