file(REMOVE_RECURSE
  "CMakeFiles/fasda_fpga.dir/node.cpp.o"
  "CMakeFiles/fasda_fpga.dir/node.cpp.o.d"
  "libfasda_fpga.a"
  "libfasda_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasda_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
