# Empty dependencies file for fasda_fpga.
# This may be replaced when dependencies are built.
