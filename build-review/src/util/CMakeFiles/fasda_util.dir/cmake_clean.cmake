file(REMOVE_RECURSE
  "CMakeFiles/fasda_util.dir/cli.cpp.o"
  "CMakeFiles/fasda_util.dir/cli.cpp.o.d"
  "CMakeFiles/fasda_util.dir/log.cpp.o"
  "CMakeFiles/fasda_util.dir/log.cpp.o.d"
  "CMakeFiles/fasda_util.dir/rng.cpp.o"
  "CMakeFiles/fasda_util.dir/rng.cpp.o.d"
  "CMakeFiles/fasda_util.dir/thread_pool.cpp.o"
  "CMakeFiles/fasda_util.dir/thread_pool.cpp.o.d"
  "libfasda_util.a"
  "libfasda_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasda_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
