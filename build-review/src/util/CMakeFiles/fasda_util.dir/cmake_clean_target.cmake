file(REMOVE_RECURSE
  "libfasda_util.a"
)
