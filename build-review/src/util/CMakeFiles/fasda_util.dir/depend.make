# Empty dependencies file for fasda_util.
# This may be replaced when dependencies are built.
