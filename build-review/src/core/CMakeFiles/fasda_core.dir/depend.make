# Empty dependencies file for fasda_core.
# This may be replaced when dependencies are built.
