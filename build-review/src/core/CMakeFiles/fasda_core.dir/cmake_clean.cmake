file(REMOVE_RECURSE
  "CMakeFiles/fasda_core.dir/simulation.cpp.o"
  "CMakeFiles/fasda_core.dir/simulation.cpp.o.d"
  "libfasda_core.a"
  "libfasda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasda_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
