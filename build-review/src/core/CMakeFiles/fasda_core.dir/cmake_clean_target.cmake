file(REMOVE_RECURSE
  "libfasda_core.a"
)
