file(REMOVE_RECURSE
  "CMakeFiles/fasda_engine.dir/batch_runner.cpp.o"
  "CMakeFiles/fasda_engine.dir/batch_runner.cpp.o.d"
  "CMakeFiles/fasda_engine.dir/engine.cpp.o"
  "CMakeFiles/fasda_engine.dir/engine.cpp.o.d"
  "CMakeFiles/fasda_engine.dir/observers.cpp.o"
  "CMakeFiles/fasda_engine.dir/observers.cpp.o.d"
  "CMakeFiles/fasda_engine.dir/registry.cpp.o"
  "CMakeFiles/fasda_engine.dir/registry.cpp.o.d"
  "libfasda_engine.a"
  "libfasda_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasda_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
