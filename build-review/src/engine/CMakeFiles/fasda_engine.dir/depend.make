# Empty dependencies file for fasda_engine.
# This may be replaced when dependencies are built.
