file(REMOVE_RECURSE
  "libfasda_engine.a"
)
