
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/analysis.cpp" "src/md/CMakeFiles/fasda_md.dir/analysis.cpp.o" "gcc" "src/md/CMakeFiles/fasda_md.dir/analysis.cpp.o.d"
  "/root/repo/src/md/checkpoint.cpp" "src/md/CMakeFiles/fasda_md.dir/checkpoint.cpp.o" "gcc" "src/md/CMakeFiles/fasda_md.dir/checkpoint.cpp.o.d"
  "/root/repo/src/md/dataset.cpp" "src/md/CMakeFiles/fasda_md.dir/dataset.cpp.o" "gcc" "src/md/CMakeFiles/fasda_md.dir/dataset.cpp.o.d"
  "/root/repo/src/md/energy.cpp" "src/md/CMakeFiles/fasda_md.dir/energy.cpp.o" "gcc" "src/md/CMakeFiles/fasda_md.dir/energy.cpp.o.d"
  "/root/repo/src/md/ewald_longrange.cpp" "src/md/CMakeFiles/fasda_md.dir/ewald_longrange.cpp.o" "gcc" "src/md/CMakeFiles/fasda_md.dir/ewald_longrange.cpp.o.d"
  "/root/repo/src/md/force_field.cpp" "src/md/CMakeFiles/fasda_md.dir/force_field.cpp.o" "gcc" "src/md/CMakeFiles/fasda_md.dir/force_field.cpp.o.d"
  "/root/repo/src/md/functional_engine.cpp" "src/md/CMakeFiles/fasda_md.dir/functional_engine.cpp.o" "gcc" "src/md/CMakeFiles/fasda_md.dir/functional_engine.cpp.o.d"
  "/root/repo/src/md/reference_engine.cpp" "src/md/CMakeFiles/fasda_md.dir/reference_engine.cpp.o" "gcc" "src/md/CMakeFiles/fasda_md.dir/reference_engine.cpp.o.d"
  "/root/repo/src/md/system_state.cpp" "src/md/CMakeFiles/fasda_md.dir/system_state.cpp.o" "gcc" "src/md/CMakeFiles/fasda_md.dir/system_state.cpp.o.d"
  "/root/repo/src/md/xyz_io.cpp" "src/md/CMakeFiles/fasda_md.dir/xyz_io.cpp.o" "gcc" "src/md/CMakeFiles/fasda_md.dir/xyz_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/geom/CMakeFiles/fasda_geom.dir/DependInfo.cmake"
  "/root/repo/build-review/src/interp/CMakeFiles/fasda_interp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/util/CMakeFiles/fasda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
