file(REMOVE_RECURSE
  "libfasda_md.a"
)
