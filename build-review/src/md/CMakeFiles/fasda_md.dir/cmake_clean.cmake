file(REMOVE_RECURSE
  "CMakeFiles/fasda_md.dir/analysis.cpp.o"
  "CMakeFiles/fasda_md.dir/analysis.cpp.o.d"
  "CMakeFiles/fasda_md.dir/checkpoint.cpp.o"
  "CMakeFiles/fasda_md.dir/checkpoint.cpp.o.d"
  "CMakeFiles/fasda_md.dir/dataset.cpp.o"
  "CMakeFiles/fasda_md.dir/dataset.cpp.o.d"
  "CMakeFiles/fasda_md.dir/energy.cpp.o"
  "CMakeFiles/fasda_md.dir/energy.cpp.o.d"
  "CMakeFiles/fasda_md.dir/ewald_longrange.cpp.o"
  "CMakeFiles/fasda_md.dir/ewald_longrange.cpp.o.d"
  "CMakeFiles/fasda_md.dir/force_field.cpp.o"
  "CMakeFiles/fasda_md.dir/force_field.cpp.o.d"
  "CMakeFiles/fasda_md.dir/functional_engine.cpp.o"
  "CMakeFiles/fasda_md.dir/functional_engine.cpp.o.d"
  "CMakeFiles/fasda_md.dir/reference_engine.cpp.o"
  "CMakeFiles/fasda_md.dir/reference_engine.cpp.o.d"
  "CMakeFiles/fasda_md.dir/system_state.cpp.o"
  "CMakeFiles/fasda_md.dir/system_state.cpp.o.d"
  "CMakeFiles/fasda_md.dir/xyz_io.cpp.o"
  "CMakeFiles/fasda_md.dir/xyz_io.cpp.o.d"
  "libfasda_md.a"
  "libfasda_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasda_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
