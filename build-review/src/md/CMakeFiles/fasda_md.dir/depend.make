# Empty dependencies file for fasda_md.
# This may be replaced when dependencies are built.
