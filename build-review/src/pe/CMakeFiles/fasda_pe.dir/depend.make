# Empty dependencies file for fasda_pe.
# This may be replaced when dependencies are built.
