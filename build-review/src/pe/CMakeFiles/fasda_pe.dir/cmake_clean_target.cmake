file(REMOVE_RECURSE
  "libfasda_pe.a"
)
