file(REMOVE_RECURSE
  "CMakeFiles/fasda_pe.dir/force_model.cpp.o"
  "CMakeFiles/fasda_pe.dir/force_model.cpp.o.d"
  "CMakeFiles/fasda_pe.dir/processing_element.cpp.o"
  "CMakeFiles/fasda_pe.dir/processing_element.cpp.o.d"
  "libfasda_pe.a"
  "libfasda_pe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasda_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
