file(REMOVE_RECURSE
  "CMakeFiles/fasda_model.dir/perf_models.cpp.o"
  "CMakeFiles/fasda_model.dir/perf_models.cpp.o.d"
  "CMakeFiles/fasda_model.dir/resource_model.cpp.o"
  "CMakeFiles/fasda_model.dir/resource_model.cpp.o.d"
  "libfasda_model.a"
  "libfasda_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasda_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
