# Empty dependencies file for fasda_model.
# This may be replaced when dependencies are built.
