file(REMOVE_RECURSE
  "libfasda_model.a"
)
