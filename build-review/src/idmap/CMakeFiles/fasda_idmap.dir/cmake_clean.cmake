file(REMOVE_RECURSE
  "CMakeFiles/fasda_idmap.dir/cell_id_map.cpp.o"
  "CMakeFiles/fasda_idmap.dir/cell_id_map.cpp.o.d"
  "libfasda_idmap.a"
  "libfasda_idmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasda_idmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
