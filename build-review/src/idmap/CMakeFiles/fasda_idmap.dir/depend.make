# Empty dependencies file for fasda_idmap.
# This may be replaced when dependencies are built.
