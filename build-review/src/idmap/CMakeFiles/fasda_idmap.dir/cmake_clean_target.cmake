file(REMOVE_RECURSE
  "libfasda_idmap.a"
)
